// Package store provides a provenance label store: a compact map from
// run vertices to their encoded reachability labels, answering
// queries directly from the stored bytes. This is the artifact a
// provenance-aware workflow system would persist next to its execution
// log — labels are written once (they are immutable, Section 2.4) and
// every "did A contribute to B?" question is answered by decoding two
// byte strings, without the execution graph.
//
// # Concurrency
//
// The store owns its synchronization. It is split into N shards keyed
// by an FNV-1a hash of the vertex id; each shard holds a small write
// mutex, a pending set of staged-but-unpublished labels, and an
// immutable read view behind an atomic pointer. Writers stage labels
// under the shard mutex ([Store.StageOwned], [Store.AppendOwned]) and
// make them visible with [Store.Publish], which freezes the pending
// set as the newest chunk of the shard's view and republishes the
// view pointer. Readers ([Store.GetRaw], [Store.Reach],
// [Store.Lineage], [Store.Snapshot], stats) only ever load view
// pointers: the query path acquires no locks, and because a published
// view is never mutated, reads are race-free by construction.
//
// The single-put methods ([Store.Put], [Store.PutEncoded],
// [Store.PutEncodedOwned]) stage and publish in one call, preserving
// the read-your-writes behavior of a plain map for sequential callers;
// batch writers (the service ingest pipeline, WAL replay) stage the
// whole batch and publish once, so view rebuilding is amortized over
// the batch.
//
// # Arena-backed stores
//
// A store restored from an arena snapshot ([NewFromArena],
// [Store.AttachArena]) serves the snapshot's labels as slices
// pointing directly into the mapped file — no per-label allocation,
// no map building — with post-snapshot ingest staged into the normal
// shard views layered on top. The aliasing is sound by the same
// write-once contract that lets GetRaw share heap bytes: a published
// label never changes, and a committed snapshot file is never
// modified. The arena layer is immutable and lock-free like the shard
// views, so the concurrency story is unchanged.
package store

import (
	"fmt"
	"maps"
	"slices"
	"sync"
	"sync/atomic"

	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// DefaultShards is the shard count used when New or NewSharded is
// given zero. Sixteen shards keep publish copies small without
// noticeable per-shard overhead at typical session sizes.
const DefaultShards = 16

// maxShards caps the shard count; more shards than this only adds
// fixed overhead to Publish, Lineage and Snapshot.
const maxShards = 4096

// Entry is one vertex → encoded-label pair for batch staging.
type Entry struct {
	V   graph.VertexID
	Enc []byte
}

// ShardStat describes one shard of the store.
type ShardStat struct {
	// Vertices is the number of published labels in the shard.
	Vertices int `json:"vertices"`
	// Epoch counts how many times the shard's read view has been
	// republished.
	Epoch int64 `json:"epoch"`
}

// shardView is a shard's published, immutable read state: a list of
// frozen maps ("chunks") ordered largest (oldest) first, each vertex
// in exactly one chunk. Publishing freezes the pending map as a new
// chunk — no copying — and restores the geometric size invariant
// (every chunk at least twice its successor) by merging tail chunks
// into fresh maps, so a label is copied O(log n) times over the
// store's lifetime, a lookup probes O(log n) maps in the worst case
// and about two in expectation, and no published map is ever mutated.
type shardView struct {
	chunks []map[graph.VertexID][]byte
}

// get probes the chunks, largest first.
func (sv *shardView) get(v graph.VertexID) ([]byte, bool) {
	for _, m := range sv.chunks {
		if enc, ok := m[v]; ok {
			return enc, true
		}
	}
	return nil, false
}

// shard is one partition of the vertex → label map. The mutex guards
// only the pending (staged, unpublished) state; the view pointer is
// written under the mutex but read lock-free.
type shard struct {
	mu          sync.Mutex
	pending     map[graph.VertexID][]byte
	pendingBits int
	view        atomic.Pointer[shardView]
	count       atomic.Int64 // published labels in this shard
	epoch       atomic.Int64
	// Pad shards apart so a writer bouncing one shard's mutex does not
	// invalidate the cache line holding a neighbor's view pointer.
	_ [64]byte
}

// Store holds encoded labels for one run.
type Store struct {
	codec  *label.Codec
	skel   *skeleton.Scheme
	shards []shard
	mask   uint32
	count  atomic.Int64 // published labels (arena included)
	bits   atomic.Int64 // published label bits (arena included)
	epoch  atomic.Int64 // global publish epoch

	// arena, when non-nil, is the immutable base layer under every
	// shard view: a mapped snapshot serving its labels as slices
	// straight into the file (see AttachArena). Reads probe the shard
	// views first — post-attach ingest lives there — then fall back to
	// the arena. Labels are write-once and the two layers are disjoint
	// by the staging dup checks, so the probe order is a performance
	// choice, not a correctness one.
	arena atomic.Pointer[arena.Arena]
}

// New creates an empty store for runs of the grammar with
// DefaultShards shards, answering queries with the given skeleton
// scheme.
func New(g *spec.Grammar, kind skeleton.Kind) *Store {
	return NewSharded(g, kind, 0)
}

// NewFromArena builds a store whose base layer is an already-open
// arena snapshot: the mapped labels become readable immediately — no
// per-label allocation, no map building — and later ingest stages
// into the normal shard views layered over the arena. The store
// shares the arena for its whole lifetime and never closes it; see
// AttachArena for the ownership contract.
func NewFromArena(g *spec.Grammar, kind skeleton.Kind, shards int, a *arena.Arena) (*Store, error) {
	s := NewSharded(g, kind, shards)
	if err := s.AttachArena(a); err != nil {
		return nil, err
	}
	return s, nil
}

// AttachArena installs an arena snapshot as the store's immutable
// base layer. The store must be empty (attach is a restore-time
// operation, before any label is staged) and can carry at most one
// arena. Ownership: the store aliases the arena's bytes in every
// GetRaw/Snapshot result from then on, so the arena must stay open —
// and its backing file must stay unmodified, which the write-once
// snapshot contract guarantees — for the lifetime of the store and of
// every byte slice it ever handed out. Callers must not Close the
// arena; it is released with the process.
func (s *Store) AttachArena(a *arena.Arena) error {
	if a == nil {
		return fmt.Errorf("store: nil arena")
	}
	if s.count.Load() != 0 {
		return fmt.Errorf("store: arena must be attached to an empty store (have %d labels)", s.count.Load())
	}
	if !s.arena.CompareAndSwap(nil, a) {
		return fmt.Errorf("store: arena already attached")
	}
	s.count.Add(int64(a.Count()))
	s.bits.Add(a.LabelBytes() * 8)
	return nil
}

// Arena returns the attached arena, or nil.
func (s *Store) Arena() *arena.Arena { return s.arena.Load() }

// ArenaCount returns the number of labels served from the arena base
// layer (zero when none is attached).
func (s *Store) ArenaCount() int {
	if a := s.arena.Load(); a != nil {
		return a.Count()
	}
	return 0
}

// NewSharded is New with an explicit shard count. The count is rounded
// up to a power of two and clamped to [1, 4096]; zero selects
// DefaultShards.
func NewSharded(g *spec.Grammar, kind skeleton.Kind, shards int) *Store {
	n := shardCount(shards)
	s := &Store{
		codec:  label.NewCodec(g),
		skel:   skeleton.New(kind, g),
		shards: make([]shard, n),
		mask:   uint32(n - 1),
	}
	empty := &shardView{}
	for i := range s.shards {
		s.shards[i].pending = make(map[graph.VertexID][]byte)
		s.shards[i].view.Store(empty)
	}
	return s
}

func shardCount(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	if n > maxShards {
		n = maxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// shardIndex hashes a vertex id (FNV-1a over its four little-endian
// bytes) to a shard index.
func (s *Store) shardIndex(v graph.VertexID) int {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	x := uint32(v)
	for i := 0; i < 4; i++ {
		h ^= x & 0xff
		h *= prime32
		x >>= 8
	}
	return int(h & s.mask)
}

func (s *Store) shardOf(v graph.VertexID) *shard {
	return &s.shards[s.shardIndex(v)]
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Put encodes, stores and publishes the label of v. Labels are
// immutable: a second Put for the same vertex is rejected.
func (s *Store) Put(v graph.VertexID, l label.Label) error {
	return s.PutEncodedOwned(v, s.codec.Encode(l))
}

// Encode encodes a label with the store's codec without storing it.
// The codec is immutable, so Encode is safe to call concurrently.
func (s *Store) Encode(l label.Label) []byte { return s.codec.Encode(l) }

// PutEncoded stores already-encoded label bytes for v and publishes
// them, rejecting duplicates. The bytes are copied on insert, so the
// caller keeps ownership of enc and may reuse it — a caller feeding
// the store from a shared read buffer must not be able to mutate a
// stored label after the fact (labels are write-once).
func (s *Store) PutEncoded(v graph.VertexID, enc []byte) error {
	own := make([]byte, len(enc))
	copy(own, enc)
	return s.PutEncodedOwned(v, own)
}

// PutEncodedOwned stores enc without copying and publishes it,
// transferring ownership to the store: the caller must never touch enc
// again. It exists for single-put callers; the hot ingest path stages
// whole batches with AppendOwned and publishes once.
func (s *Store) PutEncodedOwned(v graph.VertexID, enc []byte) error {
	if err := s.StageOwned(v, enc); err != nil {
		return err
	}
	s.Publish()
	return nil
}

// StageOwned stages enc for v without publishing it: the label becomes
// visible to readers at the next Publish. Ownership of enc transfers
// to the store. Duplicates — staged or published — are rejected.
func (s *Store) StageOwned(v graph.VertexID, enc []byte) error {
	sh := s.shardOf(v)
	sh.mu.Lock()
	err := s.stageLocked(sh, v, enc)
	sh.mu.Unlock()
	return err
}

// AppendOwned stages a batch of entries, grouped by shard so each
// shard's mutex is taken once per batch rather than once per label.
// Ownership of every Enc transfers to the store; the Entry slice
// itself is not retained. On a duplicate vertex the batch stops there:
// entries before it are staged, the rest are not.
func (s *Store) AppendOwned(entries []Entry) error {
	if len(entries) == 0 {
		return nil
	}
	// The common batch is far larger than the shard count, so the
	// bucketing cost is dwarfed by the per-shard locking it saves.
	buckets := make([][]Entry, len(s.shards))
	for _, e := range entries {
		i := s.shardIndex(e.V)
		buckets[i] = append(buckets[i], e)
	}
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range b {
			if err := s.stageLocked(sh, e.V, e.Enc); err != nil {
				sh.mu.Unlock()
				return err
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

// stageLocked records one pending label. Called with sh.mu held.
// Labels are write-once across every layer: staged, published, and
// arena-resident vertices all reject a second write.
func (s *Store) stageLocked(sh *shard, v graph.VertexID, enc []byte) error {
	if _, dup := sh.pending[v]; dup {
		return fmt.Errorf("store: vertex %d already stored", v)
	}
	if _, dup := sh.view.Load().get(v); dup {
		return fmt.Errorf("store: vertex %d already stored", v)
	}
	if a := s.arena.Load(); a != nil {
		if _, dup := a.Get(v); dup {
			return fmt.Errorf("store: vertex %d already stored", v)
		}
	}
	sh.pending[v] = enc
	sh.pendingBits += len(enc) * 8
	return nil
}

// Publish makes every staged label visible to readers by republishing
// the read view of each dirty shard: the pending map itself is frozen
// as the view's newest chunk (no copying on the publish path), and
// tail chunks are merged — into fresh maps, published chunks are never
// mutated — whenever the geometric size invariant calls for it.
// Publish returns the store's publish epoch, which increments once per
// Publish call that changed anything, and is safe to call concurrently
// with writers and readers.
func (s *Store) Publish() int64 {
	changed := false
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		if len(sh.pending) > 0 {
			old := sh.view.Load()
			chunks := make([]map[graph.VertexID][]byte, len(old.chunks), len(old.chunks)+1)
			copy(chunks, old.chunks)
			chunks = append(chunks, sh.pending)
			// Binary-counter compaction: merge the two tail chunks until
			// every chunk is at least twice its successor. Each label is
			// merged O(log n) times over the shard's lifetime.
			for len(chunks) >= 2 {
				a, b := chunks[len(chunks)-2], chunks[len(chunks)-1]
				if len(a) >= 2*len(b) {
					break
				}
				m := make(map[graph.VertexID][]byte, len(a)+len(b))
				maps.Copy(m, a)
				maps.Copy(m, b)
				chunks = append(chunks[:len(chunks)-2], m)
			}
			sh.view.Store(&shardView{chunks: chunks})
			sh.count.Add(int64(len(sh.pending)))
			s.count.Add(int64(len(sh.pending)))
			s.bits.Add(int64(sh.pendingBits))
			sh.pending = make(map[graph.VertexID][]byte)
			sh.pendingBits = 0
			sh.epoch.Add(1)
			changed = true
		}
		sh.mu.Unlock()
	}
	if changed {
		return s.epoch.Add(1)
	}
	return s.epoch.Load()
}

// Epoch returns the store's publish epoch: the number of Publish calls
// that made new labels visible.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// ShardStats returns a point-in-time snapshot of every shard's
// published label count and view epoch, in shard order.
func (s *Store) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		out[i] = ShardStat{
			Vertices: int(s.shards[i].count.Load()),
			Epoch:    s.shards[i].epoch.Load(),
		}
	}
	return out
}

// Get decodes the stored label of v.
func (s *Store) Get(v graph.VertexID) (label.Label, bool, error) {
	enc, ok := s.GetRaw(v)
	if !ok {
		return label.Label{}, false, nil
	}
	l, err := s.codec.Decode(enc)
	if err != nil {
		return label.Label{}, true, fmt.Errorf("store: vertex %d: %w", v, err)
	}
	return l, true, nil
}

// GetRaw returns the published encoded label bytes of v, without
// taking any lock. The returned slice is the store's own backing
// array — or, on an arena-backed store, a slice pointing straight
// into the mapped snapshot file — and callers must treat it as
// immutable (labels are write-once, so the bytes never change after
// publication). This is the read path concurrent services build on:
// fetch the two byte strings from the shard views, then decode and
// evaluate π with ReachBytes.
func (s *Store) GetRaw(v graph.VertexID) ([]byte, bool) {
	// Arena first: a vertex is never both arena-resident and staged
	// (stage rejects duplicates of arena vertices), so the probe order
	// is free to favor the common case. On an arena-backed store most
	// labels live in the arena and its dense lookup is one bounds
	// check; on a heap store the arena pointer is nil and this is a
	// single predictable branch.
	if a := s.arena.Load(); a != nil {
		if enc, ok := a.Get(v); ok {
			return enc, true
		}
	}
	return s.shardOf(v).view.Load().get(v)
}

// ReachBytes answers v ;* w directly from two encoded labels, without
// touching the vertex map. It is safe for concurrent use: the codec
// and skeleton scheme are immutable after New.
func (s *Store) ReachBytes(bv, bw []byte) (bool, error) {
	lv, err := s.codec.Decode(bv)
	if err != nil {
		return false, fmt.Errorf("store: first label: %w", err)
	}
	lw, err := s.codec.Decode(bw)
	if err != nil {
		return false, fmt.Errorf("store: second label: %w", err)
	}
	return core.Pi(s.skel, lv, lw), nil
}

// Reach answers v ;* w from the stored bytes alone, lock-free.
func (s *Store) Reach(v, w graph.VertexID) (bool, error) {
	lv, ok, err := s.Get(v)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", v)
	}
	lw, ok, err := s.Get(w)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", w)
	}
	return core.Pi(s.skel, lv, lw), nil
}

// Lineage returns the published vertices that reach v (its provenance
// closure), in ascending order. The target label is decoded once; the
// scan decodes each stored label against it — O(stored) decodes, no
// locks. Shard views are loaded independently, so over a concurrent
// ingest the scan sees each shard at whatever batch it last published;
// labels are write-once, so every reported ancestor is correct.
func (s *Store) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	bv, ok := s.GetRaw(v)
	if !ok {
		return nil, fmt.Errorf("store: vertex %d not stored", v)
	}
	lv, err := s.codec.Decode(bv)
	if err != nil {
		return nil, fmt.Errorf("store: vertex %d: %w", v, err)
	}
	var out []graph.VertexID
	var scanErr error
	if a := s.arena.Load(); a != nil {
		a.Range(func(w graph.VertexID, bw []byte) bool {
			lw, err := s.codec.Decode(bw)
			if err != nil {
				scanErr = fmt.Errorf("store: vertex %d: %w", w, err)
				return false
			}
			if core.Pi(s.skel, lw, lv) {
				out = append(out, w)
			}
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
	}
	for i := range s.shards {
		for _, m := range s.shards[i].view.Load().chunks {
			for w, bw := range m {
				lw, err := s.codec.Decode(bw)
				if err != nil {
					return nil, fmt.Errorf("store: vertex %d: %w", w, err)
				}
				if core.Pi(s.skel, lw, lv) {
					out = append(out, w)
				}
			}
		}
	}
	slices.Sort(out)
	return out, nil
}

// Snapshot returns a copy of the published vertex → encoded-label map,
// merged across shards (and the arena base layer, when one is
// attached), without taking any lock. The byte slices are shared with
// the store (they are write-once); only the map itself is fresh.
// Concurrent publishes may or may not be included, shard by shard —
// any such snapshot is a valid published prefix per shard.
func (s *Store) Snapshot() map[graph.VertexID][]byte {
	out := make(map[graph.VertexID][]byte, s.Count())
	if a := s.arena.Load(); a != nil {
		a.Range(func(v graph.VertexID, enc []byte) bool {
			out[v] = enc
			return true
		})
	}
	for i := range s.shards {
		for _, m := range s.shards[i].view.Load().chunks {
			maps.Copy(out, m)
		}
	}
	return out
}

// SnapshotEntries returns the published labels as a flat entry slice
// — arena base layer first, then every shard's chunks — without
// taking any lock and without building a map: this is what the
// snapshot writer iterates, so snapshotting a session allocates one
// slice of headers instead of a second copy of the whole label map.
// The Enc slices alias the store's (or the mapped arena's) bytes and
// must be treated as immutable; entries are in no particular order.
// The consistency contract matches Snapshot: each shard contributes
// whatever it last published.
func (s *Store) SnapshotEntries() []Entry {
	out := make([]Entry, 0, s.Count())
	if a := s.arena.Load(); a != nil {
		a.Range(func(v graph.VertexID, enc []byte) bool {
			out = append(out, Entry{V: v, Enc: enc})
			return true
		})
	}
	for i := range s.shards {
		for _, m := range s.shards[i].view.Load().chunks {
			for v, enc := range m {
				out = append(out, Entry{V: v, Enc: enc})
			}
		}
	}
	return out
}

// Count returns the number of published labels.
func (s *Store) Count() int { return int(s.count.Load()) }

// Bits returns the total published label bytes, in bits.
func (s *Store) Bits() int { return int(s.bits.Load()) }
