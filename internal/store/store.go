// Package store provides a provenance label store: a compact map from
// run vertices to their encoded reachability labels, answering
// queries directly from the stored bytes. This is the artifact a
// provenance-aware workflow system would persist next to its execution
// log — labels are written once (they are immutable, Section 2.4) and
// every "did A contribute to B?" question is answered by decoding two
// byte strings, without the execution graph.
package store

import (
	"fmt"
	"sort"

	"wfreach/internal/core"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// Store holds encoded labels for one run.
type Store struct {
	codec *label.Codec
	skel  *skeleton.Scheme
	data  map[graph.VertexID][]byte
	bits  int
}

// New creates an empty store for runs of the grammar, answering
// queries with the given skeleton scheme.
func New(g *spec.Grammar, kind skeleton.Kind) *Store {
	return &Store{
		codec: label.NewCodec(g),
		skel:  skeleton.New(kind, g),
		data:  make(map[graph.VertexID][]byte),
	}
}

// Put encodes and stores the label of v. Labels are immutable: a
// second Put for the same vertex is rejected.
func (s *Store) Put(v graph.VertexID, l label.Label) error {
	return s.PutEncodedOwned(v, s.codec.Encode(l))
}

// Encode encodes a label with the store's codec without storing it.
// The codec is immutable, so Encode is safe to call concurrently —
// writers use it to encode outside the lock that guards PutEncoded.
func (s *Store) Encode(l label.Label) []byte { return s.codec.Encode(l) }

// PutEncoded stores already-encoded label bytes for v, rejecting
// duplicates. The bytes are copied on insert, so the caller keeps
// ownership of enc and may reuse it — a caller feeding the store from
// a shared read buffer must not be able to mutate a stored label
// after the fact (labels are write-once).
func (s *Store) PutEncoded(v graph.VertexID, enc []byte) error {
	own := make([]byte, len(enc))
	copy(own, enc)
	return s.PutEncodedOwned(v, own)
}

// PutEncodedOwned stores enc without copying, transferring ownership
// to the store: the caller must never touch enc again. It exists for
// the hot ingest path, where the bytes come fresh out of Encode and a
// defensive copy would double every label allocation; buffer-reusing
// callers want PutEncoded instead.
func (s *Store) PutEncodedOwned(v graph.VertexID, enc []byte) error {
	if _, dup := s.data[v]; dup {
		return fmt.Errorf("store: vertex %d already stored", v)
	}
	s.data[v] = enc
	s.bits += len(enc) * 8
	return nil
}

// Get decodes the stored label of v.
func (s *Store) Get(v graph.VertexID) (label.Label, bool, error) {
	enc, ok := s.data[v]
	if !ok {
		return label.Label{}, false, nil
	}
	l, err := s.codec.Decode(enc)
	if err != nil {
		return label.Label{}, true, fmt.Errorf("store: vertex %d: %w", v, err)
	}
	return l, true, nil
}

// GetRaw returns the stored encoded label bytes of v. The returned
// slice is the store's own backing array — callers must treat it as
// immutable (labels are write-once, so the bytes never change after
// Put). This is the read path concurrent services build on: fetch the
// two byte strings under a read lock, then decode and evaluate π
// outside it with ReachBytes.
func (s *Store) GetRaw(v graph.VertexID) ([]byte, bool) {
	enc, ok := s.data[v]
	return enc, ok
}

// ReachBytes answers v ;* w directly from two encoded labels, without
// touching the vertex map. It is safe for concurrent use: the codec
// and skeleton scheme are immutable after New.
func (s *Store) ReachBytes(bv, bw []byte) (bool, error) {
	lv, err := s.codec.Decode(bv)
	if err != nil {
		return false, fmt.Errorf("store: first label: %w", err)
	}
	lw, err := s.codec.Decode(bw)
	if err != nil {
		return false, fmt.Errorf("store: second label: %w", err)
	}
	return core.Pi(s.skel, lv, lw), nil
}

// Reach answers v ;* w from the stored bytes alone.
func (s *Store) Reach(v, w graph.VertexID) (bool, error) {
	lv, ok, err := s.Get(v)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", v)
	}
	lw, ok, err := s.Get(w)
	if err != nil {
		return false, err
	}
	if !ok {
		return false, fmt.Errorf("store: vertex %d not stored", w)
	}
	return core.Pi(s.skel, lv, lw), nil
}

// Lineage returns the stored vertices that reach v (its provenance
// closure), in ascending order. O(stored) decodes.
func (s *Store) Lineage(v graph.VertexID) ([]graph.VertexID, error) {
	lv, ok, err := s.Get(v)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: vertex %d not stored", v)
	}
	var out []graph.VertexID
	for w := range s.data {
		lw, _, err := s.Get(w)
		if err != nil {
			return nil, err
		}
		if core.Pi(s.skel, lw, lv) {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Snapshot returns a shallow copy of the vertex → encoded-label map.
// The byte slices are shared with the store (they are write-once);
// only the map itself is copied, so a caller can take the snapshot
// under a lock and decode at leisure outside it.
func (s *Store) Snapshot() map[graph.VertexID][]byte {
	out := make(map[graph.VertexID][]byte, len(s.data))
	for v, enc := range s.data {
		out[v] = enc
	}
	return out
}

// Count returns the number of stored labels.
func (s *Store) Count() int { return len(s.data) }

// Bits returns the total stored label bytes, in bits.
func (s *Store) Bits() int { return s.bits }
