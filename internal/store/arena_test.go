package store_test

import (
	"bytes"
	"path/filepath"
	"slices"
	"testing"

	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wfspecs"
)

// buildRun labels a generated run and returns its grammar and encoded
// entries.
func buildRun(t *testing.T, size int) (*spec.Grammar, []store.Entry) {
	t.Helper()
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: size, Seed: 7})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)
	live := r.Graph.LiveVertices()
	entries := make([]store.Entry, 0, len(live))
	for _, v := range live {
		entries = append(entries, store.Entry{V: v, Enc: s.Encode(d.MustLabel(v))})
	}
	return g, entries
}

// splitArena writes the first half of entries into an arena file and
// returns the opened arena plus the second half for live staging.
func splitArena(t *testing.T, entries []store.Entry) (*arena.Arena, []store.Entry) {
	t.Helper()
	cut := len(entries) / 2
	aes := make([]arena.Entry, cut)
	for i, e := range entries[:cut] {
		aes[i] = arena.Entry{V: e.V, Enc: e.Enc}
	}
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := arena.Write(path, arena.Meta{Events: int64(cut)}, aes); err != nil {
		t.Fatal(err)
	}
	a, err := arena.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return a, entries[cut:]
}

func TestArenaBackedStoreMatchesHeapStore(t *testing.T) {
	g, entries := buildRun(t, 600)

	heap := store.New(g, skeleton.TCL)
	for _, e := range entries {
		if err := heap.PutEncoded(e.V, e.Enc); err != nil {
			t.Fatal(err)
		}
	}

	a, tail := splitArena(t, entries)
	ab, err := store.NewFromArena(g, skeleton.TCL, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ab.ArenaCount(); got != len(entries)-len(tail) {
		t.Fatalf("ArenaCount = %d, want %d", got, len(entries)-len(tail))
	}
	// Layer the rest as ordinary staged ingest over the arena.
	tailOwned := make([]store.Entry, len(tail))
	for i, e := range tail {
		tailOwned[i] = store.Entry{V: e.V, Enc: bytes.Clone(e.Enc)}
	}
	if err := ab.AppendOwned(tailOwned); err != nil {
		t.Fatal(err)
	}
	ab.Publish()

	if ab.Count() != heap.Count() {
		t.Fatalf("Count = %d, want %d", ab.Count(), heap.Count())
	}
	if ab.Bits() != heap.Bits() {
		t.Fatalf("Bits = %d, want %d", ab.Bits(), heap.Bits())
	}
	for _, e := range entries {
		enc, ok := ab.GetRaw(e.V)
		if !ok || !bytes.Equal(enc, e.Enc) {
			t.Fatalf("GetRaw(%d): ok=%v", e.V, ok)
		}
	}
	if _, ok := ab.GetRaw(graph.VertexID(1 << 29)); ok {
		t.Fatal("GetRaw found a vertex that was never stored")
	}
	// Reach and Lineage agree with the heap store everywhere.
	vs := make([]graph.VertexID, len(entries))
	for i, e := range entries {
		vs[i] = e.V
	}
	for i := 0; i < 40; i++ {
		v, w := vs[i%len(vs)], vs[(i*7+3)%len(vs)]
		got, err := ab.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := heap.Reach(v, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Reach(%d,%d) = %v, heap says %v", v, w, got, want)
		}
	}
	for i := 0; i < 10; i++ {
		v := vs[(i*13)%len(vs)]
		got, err := ab.Lineage(v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := heap.Lineage(v)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("Lineage(%d) diverges: %v vs %v", v, got, want)
		}
	}
}

func TestArenaStoreRejectsDuplicateOfArenaVertex(t *testing.T) {
	g, entries := buildRun(t, 200)
	a, _ := splitArena(t, entries)
	s, err := store.NewFromArena(g, skeleton.TCL, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	v := entries[0].V // in the arena half
	if err := s.PutEncoded(v, []byte{0x01}); err == nil {
		t.Fatal("staging a vertex the arena already holds must fail")
	}
}

func TestAttachArenaRequiresEmptyStore(t *testing.T) {
	g, entries := buildRun(t, 200)
	a, _ := splitArena(t, entries)
	s := store.New(g, skeleton.TCL)
	if err := s.PutEncoded(graph.VertexID(1<<20), []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachArena(a); err == nil {
		t.Fatal("attaching an arena to a non-empty store must fail")
	}
	s2 := store.New(g, skeleton.TCL)
	if err := s2.AttachArena(a); err != nil {
		t.Fatal(err)
	}
	if err := s2.AttachArena(a); err == nil {
		t.Fatal("attaching a second arena must fail")
	}
}

func TestSnapshotEntriesCoversArenaAndShards(t *testing.T) {
	g, entries := buildRun(t, 400)
	a, tail := splitArena(t, entries)
	s, err := store.NewFromArena(g, skeleton.TCL, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	tailOwned := make([]store.Entry, len(tail))
	for i, e := range tail {
		tailOwned[i] = store.Entry{V: e.V, Enc: bytes.Clone(e.Enc)}
	}
	if err := s.AppendOwned(tailOwned); err != nil {
		t.Fatal(err)
	}
	s.Publish()

	got := s.SnapshotEntries()
	if len(got) != len(entries) {
		t.Fatalf("SnapshotEntries returned %d entries, want %d", len(got), len(entries))
	}
	byV := make(map[graph.VertexID][]byte, len(got))
	for _, e := range got {
		if _, dup := byV[e.V]; dup {
			t.Fatalf("vertex %d appears twice", e.V)
		}
		byV[e.V] = e.Enc
	}
	for _, e := range entries {
		if !bytes.Equal(byV[e.V], e.Enc) {
			t.Fatalf("vertex %d bytes diverge", e.V)
		}
	}
	// And the map-form Snapshot agrees.
	m := s.Snapshot()
	if len(m) != len(entries) {
		t.Fatalf("Snapshot returned %d entries, want %d", len(m), len(entries))
	}
}
