package store_test

import (
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wfspecs"
)

func filled(t *testing.T, target int, seed int64) (*store.Store, *run.Run) {
	t.Helper()
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: target, Seed: seed})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)
	for _, v := range r.Graph.LiveVertices() {
		if err := s.Put(v, d.MustLabel(v)); err != nil {
			t.Fatal(err)
		}
	}
	return s, r
}

func TestReachFromStoredBytes(t *testing.T) {
	s, r := filled(t, 150, 1)
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			got, err := s.Reach(v, w)
			if err != nil {
				t.Fatal(err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("store.Reach(%d,%d)=%v, want %v", v, w, got, want)
			}
		}
	}
}

func TestLineage(t *testing.T) {
	s, r := filled(t, 100, 2)
	snk := r.Graph.Sinks()[0]
	lin, err := s.Lineage(snk)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range r.Graph.LiveVertices() {
		if r.Graph.Reaches(v, snk) {
			want++
		}
	}
	if len(lin) != want {
		t.Fatalf("lineage size = %d, want %d", len(lin), want)
	}
	// Ascending, includes the vertex itself (reflexive).
	found := false
	for i, v := range lin {
		if i > 0 && lin[i-1] >= v {
			t.Fatal("lineage not sorted")
		}
		if v == snk {
			found = true
		}
	}
	if !found {
		t.Fatal("lineage must include the vertex itself")
	}
}

func TestPutRejectsDuplicates(t *testing.T) {
	s, r := filled(t, 60, 3)
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Graph.LiveVertices()[0]
	if err := s.Put(v, d.MustLabel(v)); err == nil {
		t.Fatal("duplicate Put accepted (labels are immutable)")
	}
}

func TestGetAndErrors(t *testing.T) {
	s, r := filled(t, 60, 4)
	v := r.Graph.LiveVertices()[0]
	l, ok, err := s.Get(v)
	if err != nil || !ok || l.Len() == 0 {
		t.Fatalf("Get: %v %v %v", l, ok, err)
	}
	if _, ok, _ := s.Get(99999); ok {
		t.Fatal("Get of unknown vertex reported ok")
	}
	if _, err := s.Reach(99999, v); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, err := s.Reach(v, 99999); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, err := s.Lineage(99999); err == nil {
		t.Fatal("Lineage of unknown vertex accepted")
	}
}

func TestStats(t *testing.T) {
	s, r := filled(t, 80, 5)
	if s.Count() != r.Size() {
		t.Fatalf("Count = %d, want %d", s.Count(), r.Size())
	}
	if s.Bits() <= 0 {
		t.Fatal("Bits must be positive")
	}
	// Encoded storage stays in the tens of bits per vertex.
	if perVertex := float64(s.Bits()) / float64(s.Count()); perVertex > 200 {
		t.Fatalf("stored %.0f bits per vertex", perVertex)
	}
}

func TestRawBytesQueryPath(t *testing.T) {
	s, r := filled(t, 120, 4)
	live := r.Graph.LiveVertices()
	for _, v := range live {
		bv, ok := s.GetRaw(v)
		if !ok || len(bv) == 0 {
			t.Fatalf("GetRaw(%d) = %v, %v", v, bv, ok)
		}
		for _, w := range live {
			bw, _ := s.GetRaw(w)
			got, err := s.ReachBytes(bv, bw)
			if err != nil {
				t.Fatal(err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("ReachBytes(%d,%d)=%v, want %v", v, w, got, want)
			}
		}
	}
	if _, ok := s.GetRaw(99999); ok {
		t.Fatal("GetRaw of unstored vertex succeeded")
	}
	if _, err := s.ReachBytes(nil, nil); err == nil {
		t.Fatal("ReachBytes on empty bytes succeeded")
	}
}

func TestPutEncodedMatchesPut(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 80, Seed: 5})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	a := store.New(g, skeleton.TCL)
	b := store.New(g, skeleton.TCL)
	for _, v := range r.Graph.LiveVertices() {
		l := d.MustLabel(v)
		if err := a.Put(v, l); err != nil {
			t.Fatal(err)
		}
		if err := b.PutEncoded(v, b.Encode(l)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Bits() != b.Bits() || a.Count() != b.Count() {
		t.Fatalf("stores diverge: %d/%d bits, %d/%d labels", a.Bits(), b.Bits(), a.Count(), b.Count())
	}
	v := r.Graph.LiveVertices()[0]
	if err := b.PutEncoded(v, []byte{1}); err == nil {
		t.Fatal("duplicate PutEncoded accepted")
	}
}

// TestPutEncodedCopies checks the aliasing contract of PutEncoded: the
// store copies the encoded bytes on insert, so a caller that reuses
// its buffer (as WAL/snapshot replay loops do) cannot corrupt a stored
// label after the fact.
func TestPutEncodedCopies(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 3})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)

	// Feed every label through one shared buffer, clobbering it between
	// inserts the way a file-replay loop would.
	var buf []byte
	for _, v := range r.Graph.LiveVertices() {
		enc := s.Encode(d.MustLabel(v))
		buf = append(buf[:0], enc...)
		if err := s.PutEncoded(v, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = 0xff
		}
	}

	// Every stored label must still decode and answer like the oracle.
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			got, err := s.Reach(v, w)
			if err != nil {
				t.Fatalf("reach(%d,%d) after buffer reuse: %v", v, w, err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("reach(%d,%d)=%v, want %v (stored label aliased a reused buffer)", v, w, got, want)
			}
		}
	}

	// The raw bytes handed back must also be the store's own copy.
	v := live[0]
	raw, ok := s.GetRaw(v)
	if !ok {
		t.Fatal("GetRaw lost a vertex")
	}
	if len(raw) > 0 && &raw[0] == &buf[0] {
		t.Fatal("GetRaw returned the caller's buffer")
	}
}
