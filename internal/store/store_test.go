package store_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wfspecs"
)

func filled(t *testing.T, target int, seed int64) (*store.Store, *run.Run) {
	t.Helper()
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: target, Seed: seed})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)
	for _, v := range r.Graph.LiveVertices() {
		if err := s.Put(v, d.MustLabel(v)); err != nil {
			t.Fatal(err)
		}
	}
	return s, r
}

func TestReachFromStoredBytes(t *testing.T) {
	s, r := filled(t, 150, 1)
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			got, err := s.Reach(v, w)
			if err != nil {
				t.Fatal(err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("store.Reach(%d,%d)=%v, want %v", v, w, got, want)
			}
		}
	}
}

func TestLineage(t *testing.T) {
	s, r := filled(t, 100, 2)
	snk := r.Graph.Sinks()[0]
	lin, err := s.Lineage(snk)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range r.Graph.LiveVertices() {
		if r.Graph.Reaches(v, snk) {
			want++
		}
	}
	if len(lin) != want {
		t.Fatalf("lineage size = %d, want %d", len(lin), want)
	}
	// Ascending, includes the vertex itself (reflexive).
	found := false
	for i, v := range lin {
		if i > 0 && lin[i-1] >= v {
			t.Fatal("lineage not sorted")
		}
		if v == snk {
			found = true
		}
	}
	if !found {
		t.Fatal("lineage must include the vertex itself")
	}
}

func TestPutRejectsDuplicates(t *testing.T) {
	s, r := filled(t, 60, 3)
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	v := r.Graph.LiveVertices()[0]
	if err := s.Put(v, d.MustLabel(v)); err == nil {
		t.Fatal("duplicate Put accepted (labels are immutable)")
	}
}

func TestGetAndErrors(t *testing.T) {
	s, r := filled(t, 60, 4)
	v := r.Graph.LiveVertices()[0]
	l, ok, err := s.Get(v)
	if err != nil || !ok || l.Len() == 0 {
		t.Fatalf("Get: %v %v %v", l, ok, err)
	}
	if _, ok, _ := s.Get(99999); ok {
		t.Fatal("Get of unknown vertex reported ok")
	}
	if _, err := s.Reach(99999, v); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, err := s.Reach(v, 99999); err == nil {
		t.Fatal("Reach with unknown vertex accepted")
	}
	if _, err := s.Lineage(99999); err == nil {
		t.Fatal("Lineage of unknown vertex accepted")
	}
}

func TestStats(t *testing.T) {
	s, r := filled(t, 80, 5)
	if s.Count() != r.Size() {
		t.Fatalf("Count = %d, want %d", s.Count(), r.Size())
	}
	if s.Bits() <= 0 {
		t.Fatal("Bits must be positive")
	}
	// Encoded storage stays in the tens of bits per vertex.
	if perVertex := float64(s.Bits()) / float64(s.Count()); perVertex > 200 {
		t.Fatalf("stored %.0f bits per vertex", perVertex)
	}
}

func TestRawBytesQueryPath(t *testing.T) {
	s, r := filled(t, 120, 4)
	live := r.Graph.LiveVertices()
	for _, v := range live {
		bv, ok := s.GetRaw(v)
		if !ok || len(bv) == 0 {
			t.Fatalf("GetRaw(%d) = %v, %v", v, bv, ok)
		}
		for _, w := range live {
			bw, _ := s.GetRaw(w)
			got, err := s.ReachBytes(bv, bw)
			if err != nil {
				t.Fatal(err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("ReachBytes(%d,%d)=%v, want %v", v, w, got, want)
			}
		}
	}
	if _, ok := s.GetRaw(99999); ok {
		t.Fatal("GetRaw of unstored vertex succeeded")
	}
	if _, err := s.ReachBytes(nil, nil); err == nil {
		t.Fatal("ReachBytes on empty bytes succeeded")
	}
}

func TestPutEncodedMatchesPut(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 80, Seed: 5})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	a := store.New(g, skeleton.TCL)
	b := store.New(g, skeleton.TCL)
	for _, v := range r.Graph.LiveVertices() {
		l := d.MustLabel(v)
		if err := a.Put(v, l); err != nil {
			t.Fatal(err)
		}
		if err := b.PutEncoded(v, b.Encode(l)); err != nil {
			t.Fatal(err)
		}
	}
	if a.Bits() != b.Bits() || a.Count() != b.Count() {
		t.Fatalf("stores diverge: %d/%d bits, %d/%d labels", a.Bits(), b.Bits(), a.Count(), b.Count())
	}
	v := r.Graph.LiveVertices()[0]
	if err := b.PutEncoded(v, []byte{1}); err == nil {
		t.Fatal("duplicate PutEncoded accepted")
	}
}

// TestPutEncodedCopies checks the aliasing contract of PutEncoded: the
// store copies the encoded bytes on insert, so a caller that reuses
// its buffer (as WAL/snapshot replay loops do) cannot corrupt a stored
// label after the fact.
func TestPutEncodedCopies(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 3})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)

	// Feed every label through one shared buffer, clobbering it between
	// inserts the way a file-replay loop would.
	var buf []byte
	for _, v := range r.Graph.LiveVertices() {
		enc := s.Encode(d.MustLabel(v))
		buf = append(buf[:0], enc...)
		if err := s.PutEncoded(v, buf); err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = 0xff
		}
	}

	// Every stored label must still decode and answer like the oracle.
	live := r.Graph.LiveVertices()
	for _, v := range live {
		for _, w := range live {
			got, err := s.Reach(v, w)
			if err != nil {
				t.Fatalf("reach(%d,%d) after buffer reuse: %v", v, w, err)
			}
			if want := r.Graph.Reaches(v, w); got != want {
				t.Fatalf("reach(%d,%d)=%v, want %v (stored label aliased a reused buffer)", v, w, got, want)
			}
		}
	}

	// The raw bytes handed back must also be the store's own copy.
	v := live[0]
	raw, ok := s.GetRaw(v)
	if !ok {
		t.Fatal("GetRaw lost a vertex")
	}
	if len(raw) > 0 && &raw[0] == &buf[0] {
		t.Fatal("GetRaw returned the caller's buffer")
	}
}

// TestShardCountRounding checks NewSharded's clamping and
// power-of-two rounding.
func TestShardCountRounding(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	for _, tc := range []struct{ in, want int }{
		{0, store.DefaultShards}, {-3, store.DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}, {1 << 20, 4096},
	} {
		if got := store.NewSharded(g, skeleton.TCL, tc.in).Shards(); got != tc.want {
			t.Errorf("NewSharded(%d).Shards() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestStagePublishVisibility checks the batch contract: staged labels
// are invisible until Publish, then all visible at once, and shard
// stats account for exactly the published ones.
func TestStagePublishVisibility(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: 8})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.NewSharded(g, skeleton.TCL, 4)
	live := r.Graph.LiveVertices()
	entries := make([]store.Entry, 0, len(live))
	for _, v := range live {
		entries = append(entries, store.Entry{V: v, Enc: s.Encode(d.MustLabel(v))})
	}
	if err := s.AppendOwned(entries); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 || s.Bits() != 0 {
		t.Fatalf("staged labels already counted: count=%d bits=%d", s.Count(), s.Bits())
	}
	if _, ok := s.GetRaw(live[0]); ok {
		t.Fatal("staged label visible before Publish")
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("epoch before publish = %d", got)
	}

	if got := s.Publish(); got != 1 {
		t.Fatalf("first publish epoch = %d, want 1", got)
	}
	if s.Count() != len(live) {
		t.Fatalf("published %d labels, want %d", s.Count(), len(live))
	}
	for _, v := range live {
		if _, ok := s.GetRaw(v); !ok {
			t.Fatalf("vertex %d missing after Publish", v)
		}
	}
	// A no-op publish does not advance the epoch.
	if got := s.Publish(); got != 1 {
		t.Fatalf("no-op publish epoch = %d, want 1", got)
	}

	stats := s.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(stats))
	}
	sum, epochs := 0, int64(0)
	for _, st := range stats {
		sum += st.Vertices
		epochs += st.Epoch
	}
	if sum != len(live) {
		t.Fatalf("shard counts sum to %d, want %d", sum, len(live))
	}
	if epochs == 0 {
		t.Fatal("no shard epoch advanced")
	}

	// Duplicates are rejected whether published or still staged.
	if err := s.AppendOwned([]store.Entry{{V: live[0], Enc: []byte{1}}}); err == nil {
		t.Fatal("duplicate of a published vertex accepted")
	}
	if err := s.StageOwned(99999, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.StageOwned(99999, []byte{2}); err == nil {
		t.Fatal("duplicate of a staged vertex accepted")
	}
}

// TestConcurrentBatchIngestQuery is the store's own concurrency
// contract test (run with -race): one writer stages and publishes
// batches while readers hammer the lock-free query path — GetRaw,
// Reach, Lineage, Snapshot and stats — over whatever prefix is
// published, checking every reach answer against the BFS oracle.
func TestConcurrentBatchIngestQuery(t *testing.T) {
	g := spec.MustCompile(wfspecs.BioAID())
	events, r, err := gen.GenerateEvents(g, gen.Options{TargetSize: 1500, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		t.Fatal(err)
	}
	s := store.NewSharded(g, skeleton.TCL, 8)

	const batch = 48
	published := new(atomic.Int64) // events published so far
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // single writer: stage a batch, publish, advance
		defer wg.Done()
		defer close(done)
		for lo := 0; lo < len(events); lo += batch {
			hi := min(lo+batch, len(events))
			entries := make([]store.Entry, 0, hi-lo)
			for _, ev := range events[lo:hi] {
				entries = append(entries, store.Entry{V: ev.V, Enc: s.Encode(d.MustLabel(ev.V))})
			}
			if err := s.AppendOwned(entries); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			s.Publish()
			published.Store(int64(hi))
		}
	}()

	for ri := 0; ri < 4; ri++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 400; q++ {
				n := published.Load()
				if n < 2 {
					q--
					continue
				}
				v := events[rng.Int63n(n)].V
				w := events[rng.Int63n(n)].V
				got, err := s.Reach(v, w)
				if err != nil {
					t.Errorf("reach(%d,%d): %v", v, w, err)
					return
				}
				if want := r.Graph.Reaches(v, w); got != want {
					t.Errorf("reach(%d,%d)=%v, want %v", v, w, got, want)
					return
				}
				switch q % 40 {
				case 0:
					if _, err := s.Lineage(v); err != nil {
						t.Errorf("lineage(%d): %v", v, err)
						return
					}
				case 1:
					if got := len(s.Snapshot()); int64(got) < n {
						// Snapshot races later publishes, but can never
						// hold fewer labels than were published before
						// the call.
						t.Errorf("snapshot has %d labels, published %d", got, n)
						return
					}
				case 2:
					s.ShardStats()
					s.Epoch()
					s.Count()
					s.Bits()
				}
			}
		}(int64(ri))
	}
	wg.Wait()

	// Everything is published: the lineage of the final sink matches a
	// full oracle scan.
	last := events[len(events)-1].V
	lin, err := s.Lineage(last)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, ev := range events {
		if r.Graph.Reaches(ev.V, last) {
			want++
		}
	}
	if len(lin) != want {
		t.Fatalf("lineage size %d, want %d", len(lin), want)
	}
	for i := 1; i < len(lin); i++ {
		if lin[i-1] >= lin[i] {
			t.Fatal("lineage not ascending")
		}
	}
}
