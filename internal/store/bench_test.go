package store_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"wfreach/internal/arena"
	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/wfspecs"
)

// benchLabels generates a run and its encoded labels once per size.
func benchLabels(b *testing.B, size int) (*spec.Grammar, []store.Entry) {
	b.Helper()
	g := spec.MustCompile(wfspecs.BioAID())
	r := gen.MustGenerate(g, gen.Options{TargetSize: size, Seed: 1})
	d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
	if err != nil {
		b.Fatal(err)
	}
	s := store.New(g, skeleton.TCL)
	live := r.Graph.LiveVertices()
	entries := make([]store.Entry, 0, len(live))
	for _, v := range live {
		entries = append(entries, store.Entry{V: v, Enc: s.Encode(d.MustLabel(v))})
	}
	return g, entries
}

// BenchmarkStoreBatchPublish measures the write path the service
// ingest pipeline uses: stage a batch shard-grouped, publish once.
func BenchmarkStoreBatchPublish(b *testing.B) {
	const batch = 256
	g, entries := benchLabels(b, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := store.New(g, skeleton.TCL)
		for lo := 0; lo < len(entries); lo += batch {
			hi := min(lo+batch, len(entries))
			if err := s.AppendOwned(entries[lo:hi]); err != nil {
				b.Fatal(err)
			}
			s.Publish()
		}
	}
	b.ReportMetric(float64(len(entries)*b.N)/b.Elapsed().Seconds(), "labels/sec")
}

// BenchmarkStoreGetRaw measures the lock-free point lookup across
// parallel readers on a fully published store.
func BenchmarkStoreGetRaw(b *testing.B) {
	g, entries := benchLabels(b, 8192)
	s := store.New(g, skeleton.TCL)
	if err := s.AppendOwned(entries); err != nil {
		b.Fatal(err)
	}
	s.Publish()
	vs := make([]graph.VertexID, len(entries))
	for i, e := range entries {
		vs[i] = e.V
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			if _, ok := s.GetRaw(vs[rng.Intn(len(vs))]); !ok {
				b.Fail()
			}
		}
	})
}

// arenaStore writes all entries into an arena file and returns a store
// that serves them zero-copy from the mapping.
func arenaStore(b *testing.B, g *spec.Grammar, entries []store.Entry) *store.Store {
	b.Helper()
	aes := make([]arena.Entry, len(entries))
	for i, e := range entries {
		aes[i] = arena.Entry{V: e.V, Enc: e.Enc}
	}
	path := filepath.Join(b.TempDir(), "labels.snap")
	if _, err := arena.Write(path, arena.Meta{Events: int64(len(entries))}, aes); err != nil {
		b.Fatal(err)
	}
	a, err := arena.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	s, err := store.NewFromArena(g, skeleton.TCL, 0, a)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkStoreGetRawArena is the arena-backed counterpart of
// BenchmarkStoreGetRaw: every lookup resolves through the mapped index
// instead of the shard chunk lists. The acceptance bar for the arena
// read path is parity with the heap store.
func BenchmarkStoreGetRawArena(b *testing.B) {
	g, entries := benchLabels(b, 8192)
	s := arenaStore(b, g, entries)
	vs := make([]graph.VertexID, len(entries))
	for i, e := range entries {
		vs[i] = e.V
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(3))
		for pb.Next() {
			if _, ok := s.GetRaw(vs[rng.Intn(len(vs))]); !ok {
				b.Fail()
			}
		}
	})
}

// BenchmarkStoreReachBytes measures the two-lookup reachability check
// on heap-backed vs arena-backed stores.
func BenchmarkStoreReachBytes(b *testing.B) {
	g, entries := benchLabels(b, 8192)
	heap := store.New(g, skeleton.TCL)
	if err := heap.AppendOwned(entries); err != nil {
		b.Fatal(err)
	}
	heap.Publish()
	for name, s := range map[string]*store.Store{
		"heap":  heap,
		"arena": arenaStore(b, g, entries),
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := entries[i%len(entries)].V
				w := entries[(i*7+3)%len(entries)].V
				if _, err := s.Reach(v, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStoreLineage measures the full provenance-closure scan
// (decode target once, decode-and-π every stored label).
func BenchmarkStoreLineage(b *testing.B) {
	g, entries := benchLabels(b, 4096)
	s := store.New(g, skeleton.TCL)
	if err := s.AppendOwned(entries); err != nil {
		b.Fatal(err)
	}
	s.Publish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lineage(entries[i%len(entries)].V); err != nil {
			b.Fatal(err)
		}
	}
}
