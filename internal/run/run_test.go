package run_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/run"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func grammar(t *testing.T) *spec.Grammar {
	t.Helper()
	return spec.MustCompile(wfspecs.RunningExample())
}

func TestNewStartsAtG0(t *testing.T) {
	r := run.New(grammar(t))
	if r.Size() != 3 {
		t.Fatalf("initial size = %d, want 3", r.Size())
	}
	if len(r.Open()) != 1 || r.NameOf(r.Open()[0]) != "L" {
		t.Fatalf("open composites = %v", r.Open())
	}
	if r.Complete() {
		t.Fatal("fresh run is not complete")
	}
	if r.NameOf(r.StartIDs[0]) != "s0" {
		t.Fatal("start ids misaligned")
	}
}

func TestApplyPlainReplacement(t *testing.T) {
	g := grammar(t)
	r := run.New(g)
	u := r.Open()[0] // L
	h1 := g.Spec().Implementations("L")[0]
	st, err := r.Apply(u, h1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Copies != 1 || len(st.IDs) != 1 || len(st.IDs[0]) != 3 {
		t.Fatalf("step shape wrong: %+v", st)
	}
	// s0 -> s1 -> F -> t1 -> t0 wiring.
	if !r.Graph.HasEdge(r.StartIDs[0], st.IDs[0][0]) {
		t.Fatal("s0 must feed s1")
	}
	if !r.Graph.HasEdge(st.IDs[0][2], r.StartIDs[2]) {
		t.Fatal("t1 must feed t0")
	}
	if r.NameOf(st.IDs[0][1]) != "F" {
		t.Fatal("F vertex mislabeled")
	}
	if len(r.Open()) != 1 || r.NameOf(r.Open()[0]) != "F" {
		t.Fatalf("open after step: %v", r.Open())
	}
}

func TestApplyLoopSeriesCopies(t *testing.T) {
	g := grammar(t)
	r := run.New(g)
	h1 := g.Spec().Implementations("L")[0]
	st, err := r.Apply(r.Open()[0], h1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.IDs) != 3 {
		t.Fatalf("copies = %d", len(st.IDs))
	}
	// Series: sink of copy c feeds source of copy c+1; copies ordered.
	for c := 0; c+1 < 3; c++ {
		if !r.Graph.HasEdge(st.IDs[c][2], st.IDs[c+1][0]) {
			t.Fatalf("copy %d sink must feed copy %d source", c, c+1)
		}
	}
	if !r.Graph.Reaches(st.IDs[0][1], st.IDs[2][1]) {
		t.Fatal("earlier loop copy must reach later")
	}
	if r.Graph.Reaches(st.IDs[2][0], st.IDs[0][2]) {
		t.Fatal("later loop copy must not reach earlier")
	}
}

func TestApplyForkParallelCopies(t *testing.T) {
	g := grammar(t)
	r := run.New(g)
	r.Apply(r.Open()[0], g.Spec().Implementations("L")[0], 1)
	h2 := g.Spec().Implementations("F")[0]
	st, err := r.Apply(r.Open()[0], h2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.Reaches(st.IDs[0][0], st.IDs[1][0]) || r.Graph.Reaches(st.IDs[1][0], st.IDs[0][0]) {
		t.Fatal("fork copies must be mutually unreachable")
	}
}

func TestApplyValidation(t *testing.T) {
	g := grammar(t)
	r := run.New(g)
	u := r.Open()[0]
	h1 := g.Spec().Implementations("L")[0]
	h2 := g.Spec().Implementations("F")[0]
	if _, err := r.Apply(u, h2, 1); err == nil {
		t.Fatal("wrong implementation accepted")
	}
	if _, err := r.Apply(u, h1, 0); err == nil {
		t.Fatal("zero copies accepted")
	}
	if _, err := r.Apply(r.StartIDs[0], h1, 1); err == nil {
		t.Fatal("atomic target accepted")
	}
	if _, err := r.Apply(999, h1, 1); err == nil {
		t.Fatal("unknown target accepted")
	}
	r.Apply(u, h1, 1)
	if _, err := r.Apply(u, h1, 1); err == nil {
		t.Fatal("tombstone target accepted")
	}
	// Multi-copy of a plain module is rejected.
	f := r.Open()[0]
	r.Apply(f, h2, 1)
	a := r.Open()[0] // A, plain
	h3 := g.Spec().Implementations("A")[0]
	if _, err := r.Apply(a, h3, 2); err == nil {
		t.Fatal("multiple copies of a plain module accepted")
	}
}

// deriveAll completes the run with minimal choices.
func deriveAll(t *testing.T, r *run.Run) {
	t.Helper()
	for !r.Complete() {
		u := r.Open()[0]
		impls := r.Grammar.Spec().Implementations(r.NameOf(u))
		// Cheapest implementation: fewest composite vertices.
		best := impls[0]
		bestCost := 1 << 30
		for _, id := range impls {
			c := r.Grammar.MinExpansion(r.NameOf(u)) // not exact; use graph size
			gg := r.Grammar.Spec().Graph(id).G
			c = gg.NumVertices()
			for v := 0; v < gg.NumVertices(); v++ {
				if r.Grammar.Spec().Kind(gg.Name(graph.VertexID(v))).Composite() {
					c += 100
				}
			}
			if c < bestCost {
				best, bestCost = id, c
			}
		}
		if _, err := r.Apply(u, best, 1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSpecOfTracksEveryVertex(t *testing.T) {
	r := run.New(grammar(t))
	deriveAll(t, r)
	for v := 0; v < r.Graph.NumVertices(); v++ {
		if r.SpecOf[v].IsZero() {
			t.Fatalf("vertex %d has no spec ref", v)
		}
	}
}

func TestExecutionTopologicalAndComplete(t *testing.T) {
	r := run.New(grammar(t))
	if _, err := r.Execution(nil); err == nil {
		t.Fatal("execution of incomplete run accepted")
	}
	deriveAll(t, r)
	evs, err := r.Execution(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != r.Size() {
		t.Fatalf("execution has %d events for %d vertices", len(evs), r.Size())
	}
	seen := make(map[graph.VertexID]bool)
	for _, ev := range evs {
		for _, p := range ev.Preds {
			if !seen[p] {
				t.Fatalf("vertex %d inserted before predecessor %d", ev.V, p)
			}
		}
		if seen[ev.V] {
			t.Fatalf("vertex %d inserted twice", ev.V)
		}
		seen[ev.V] = true
		if ev.Ref.IsZero() {
			t.Fatalf("event for %d lacks spec ref", ev.V)
		}
	}
}

func TestExecutionRandomOrderIsTopological(t *testing.T) {
	r := run.New(grammar(t))
	deriveAll(t, r)
	rng := rand.New(rand.NewSource(3))
	evs, err := r.Execution(rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[graph.VertexID]bool)
	for _, ev := range evs {
		for _, p := range ev.Preds {
			if !seen[p] {
				t.Fatal("random execution violates topological order")
			}
		}
		seen[ev.V] = true
	}
}

func TestExecutionFirstEventIsG0Source(t *testing.T) {
	r := run.New(grammar(t))
	deriveAll(t, r)
	evs, _ := r.Execution(nil)
	if evs[0].Ref.Graph != spec.StartGraph || len(evs[0].Preds) != 0 {
		t.Fatal("execution must start at the source of g0")
	}
	if r.NameOf(evs[0].V) != "s0" {
		t.Fatalf("first event executes %s", r.NameOf(evs[0].V))
	}
}
