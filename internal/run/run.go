// Package run materializes workflow runs: it applies derivation steps
// (vertex replacements, Definition 9) to build the execution graph,
// tracks the specification vertex behind every run vertex (the
// "execution log" mapping of Section 5.3), and converts completed
// derivations into execution sequences (vertex insertions, Definition
// 8). The same applied steps drive both the ground-truth graph and the
// dynamic labelers, so tests can compare them move by move.
package run

import (
	"fmt"
	"math/rand"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// Step is one applied derivation step g_{i-1}[u/h] ⇒ g_i. For loop and
// fork targets a single step may replace u with the series or parallel
// composition of Copies copies of the implementation (the pumped
// productions of Definition 6).
type Step struct {
	// Target is the composite run vertex u being replaced.
	Target graph.VertexID
	// Impl is the implementation graph h chosen for Name(u).
	Impl spec.GraphID
	// Copies is the number of copies composed (1 unless Name(u) is a
	// loop or fork name).
	Copies int
	// IDs[c][v] is the run vertex assigned to spec vertex v of copy c.
	IDs [][]graph.VertexID
}

// Event is one vertex insertion of an execution (Definition 8),
// annotated with the specification vertex it executes — the mapping
// that workflow systems record in execution logs (Section 5.3).
type Event struct {
	V     graph.VertexID
	Ref   spec.VertexRef
	Preds []graph.VertexID
}

// Run is a (possibly still deriving) workflow run.
type Run struct {
	Grammar *spec.Grammar
	// Graph is the current execution graph. Replaced composite
	// vertices remain as tombstones so run vertex ids stay stable.
	Graph *graph.Graph
	// SpecOf maps every run vertex (live or tombstone) to the
	// specification vertex it instantiates.
	SpecOf []spec.VertexRef
	// StartIDs[v] is the run vertex of spec vertex v of g0.
	StartIDs []graph.VertexID
	// Steps is the derivation applied so far.
	Steps []Step

	open []graph.VertexID // live composite vertices, in creation order
}

// New starts a run at the start graph g0.
func New(g *spec.Grammar) *Run {
	r := &Run{Grammar: g, Graph: graph.New()}
	g0 := g.Spec().Graph(spec.StartGraph).G
	r.StartIDs = make([]graph.VertexID, g0.NumVertices())
	for v := 0; v < g0.NumVertices(); v++ {
		vid := graph.VertexID(v)
		id := r.Graph.AddVertex(g0.Name(vid))
		r.StartIDs[v] = id
		r.SpecOf = append(r.SpecOf, spec.VertexRef{Graph: spec.StartGraph, V: vid})
		if g.Spec().Kind(g0.Name(vid)).Composite() {
			r.open = append(r.open, id)
		}
	}
	for v := 0; v < g0.NumVertices(); v++ {
		for _, w := range g0.Out(graph.VertexID(v)) {
			r.Graph.MustAddEdge(r.StartIDs[v], r.StartIDs[w])
		}
	}
	return r
}

// Open returns the live composite run vertices, oldest first. The
// returned slice is owned by the run.
func (r *Run) Open() []graph.VertexID { return r.open }

// Complete reports whether the run has no composite vertices left,
// i.e. it is a member of L(G) (Definition 7).
func (r *Run) Complete() bool { return len(r.open) == 0 }

// NameOf returns the module name of a run vertex.
func (r *Run) NameOf(v graph.VertexID) string {
	ref := r.SpecOf[v]
	return r.Grammar.Spec().Graph(ref.Graph).G.Name(ref.V)
}

// Size returns the number of live vertices.
func (r *Run) Size() int { return r.Graph.LiveCount() }

// Apply replaces the composite run vertex u with copies of the given
// implementation graph, returning the applied step. It validates that
// u is a live composite vertex, that impl implements Name(u), and that
// copies is 1 unless Name(u) is a loop or fork name.
func (r *Run) Apply(u graph.VertexID, impl spec.GraphID, copies int) (*Step, error) {
	if !r.Graph.Valid(u) || r.Graph.IsTombstone(u) {
		return nil, fmt.Errorf("run: target %d is not a live vertex", u)
	}
	name := r.NameOf(u)
	kind := r.Grammar.Spec().Kind(name)
	if !kind.Composite() {
		return nil, fmt.Errorf("run: target %d (%s) is atomic", u, name)
	}
	ng := r.Grammar.Spec().Graph(impl)
	if ng == nil || ng.Owner != name {
		return nil, fmt.Errorf("run: graph %d does not implement %s", impl, name)
	}
	if copies < 1 {
		return nil, fmt.Errorf("run: copies = %d", copies)
	}
	if copies > 1 && kind != spec.Loop && kind != spec.Fork {
		return nil, fmt.Errorf("run: %d copies for non-loop/fork %s", copies, name)
	}

	// Build the replacement graph: h, S(h,...,h) or P(h,...,h).
	parts := make([]*graph.Graph, copies)
	for i := range parts {
		parts[i] = ng.G
	}
	var repl *graph.Graph
	var m graph.Mapping
	if copies == 1 {
		repl, m = ng.G.Clone(), graph.Mapping{identityMapping(ng.G.NumVertices())}
	} else if kind == spec.Loop {
		repl, m = graph.Series(parts...)
	} else {
		repl, m = graph.Parallel(parts...)
	}

	res, err := r.Graph.Replace(u, repl)
	if err != nil {
		return nil, err
	}

	st := &Step{Target: u, Impl: impl, Copies: copies, IDs: make([][]graph.VertexID, copies)}
	for c := 0; c < copies; c++ {
		st.IDs[c] = make([]graph.VertexID, ng.G.NumVertices())
		for v := 0; v < ng.G.NumVertices(); v++ {
			st.IDs[c][v] = res.VertexOf[m[c][v]]
		}
	}
	// Bookkeeping: spec refs and open composites for the new vertices,
	// in copy-then-vertex order.
	for c := 0; c < copies; c++ {
		for v := 0; v < ng.G.NumVertices(); v++ {
			vid := graph.VertexID(v)
			id := st.IDs[c][v]
			for int(id) >= len(r.SpecOf) {
				r.SpecOf = append(r.SpecOf, spec.NoRef)
			}
			r.SpecOf[id] = spec.VertexRef{Graph: impl, V: vid}
			if r.Grammar.Spec().Kind(ng.G.Name(vid)).Composite() {
				r.open = append(r.open, id)
			}
		}
	}
	r.removeOpen(u)
	r.Steps = append(r.Steps, *st)
	return st, nil
}

func (r *Run) removeOpen(u graph.VertexID) {
	for i, v := range r.open {
		if v == u {
			r.open = append(r.open[:i], r.open[i+1:]...)
			return
		}
	}
}

func identityMapping(n int) []graph.VertexID {
	m := make([]graph.VertexID, n)
	for i := range m {
		m[i] = graph.VertexID(i)
	}
	return m
}

// Execution converts the completed run into a sequence of insertions
// in a topological order of the final graph (Definition 8): vertices
// are executed respecting data dependencies. With rng non-nil the
// order among ready vertices is randomized (any topological order is a
// valid execution); otherwise smallest-id-first is used.
func (r *Run) Execution(rng *rand.Rand) ([]Event, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("run: execution of an incomplete run")
	}
	g := r.Graph
	n := g.NumVertices()
	indeg := make([]int, n)
	var ready []graph.VertexID
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		if g.IsTombstone(vid) {
			continue
		}
		indeg[v] = g.InDegree(vid)
		if indeg[v] == 0 {
			ready = append(ready, vid)
		}
	}
	events := make([]Event, 0, g.LiveCount())
	for len(ready) > 0 {
		var idx int
		if rng != nil {
			idx = rng.Intn(len(ready))
		}
		v := ready[idx]
		ready = append(ready[:idx], ready[idx+1:]...)
		events = append(events, Event{
			V:     v,
			Ref:   r.SpecOf[v],
			Preds: append([]graph.VertexID(nil), g.In(v)...),
		})
		for _, w := range g.Out(v) {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	if len(events) != g.LiveCount() {
		return nil, fmt.Errorf("run: execution covered %d of %d vertices", len(events), g.LiveCount())
	}
	return events, nil
}

// Reaches answers ground-truth reachability on the current graph.
func (r *Run) Reaches(v, w graph.VertexID) bool { return r.Graph.Reaches(v, w) }
