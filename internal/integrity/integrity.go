// Package integrity holds the hash primitives of the tamper-evidence
// story: the SHA-256 hash chain over WAL frames and the Merkle tree
// over arena label extents. Everything here is pure computation over
// bytes — the package knows nothing about files, logs, or sessions, so
// the WAL, the arena, and the offline auditor can all share one
// definition of "the chain" without an import cycle.
//
// The chain. Every WAL record is hashed into a running head:
//
//	head(0) = 00…00 (32 zero bytes)
//	head(n) = SHA-256(head(n-1) || frame(n))
//
// where frame(n) is the record's raw WAL frame — length, CRC, and
// payload, exactly the bytes on disk. Frames are byte-identical across
// the binary ingest wire, the primary's WAL, the shipped tail, and a
// follower's WAL, so every holder of the same history computes the
// same head, and a single 32-byte head commits to the entire prefix:
// rewriting any committed record (even CRC-consistently) changes every
// head from that record on.
//
// The Merkle tree. Arena snapshots commit to their label extents with
// a Merkle root so an auditor can verify the label region against one
// hash (and, later, prove single extents without shipping the whole
// region). Leaves and interior nodes are domain-separated:
//
//	leaf(v, label) = SHA-256(0x00 || uint32le(v) || label)
//	node(a, b)     = SHA-256(0x01 || a || b)
//
// Leaves are added in ascending vertex order (the arena's index
// order). An unbalanced right edge is bagged by folding the pending
// subtree roots right to left, so the root is deterministic for every
// leaf count; zero leaves hash to the zero head.
package integrity

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
)

// Head is a 32-byte SHA-256 digest: a chain head or a Merkle root.
// The zero value is the chain's genesis (the head before any record)
// and the Merkle root of an empty tree.
type Head [sha256.Size]byte

// IsZero reports whether the head is the all-zero genesis value.
func (h Head) IsZero() bool { return h == Head{} }

// String renders the head as lowercase hex, the wire and CLI form.
func (h Head) String() string { return hex.EncodeToString(h[:]) }

// ParseHead parses the lowercase-hex wire form produced by String.
func ParseHead(s string) (Head, error) {
	var h Head
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return Head{}, fmt.Errorf("integrity: %q is not a 64-digit hex head", s)
	}
	copy(h[:], b)
	return h, nil
}

// Chainer extends a hash chain over raw WAL frames. It exists to
// amortize hasher allocation across a batch: one Chainer, reused
// frame after frame, allocates nothing per extension. A Chainer is
// not safe for concurrent use.
type Chainer struct {
	h hash.Hash
}

// NewChainer returns a reusable chain hasher.
func NewChainer() *Chainer { return &Chainer{h: sha256.New()} }

// Extend folds one raw frame into the chain: SHA-256(prev || frame).
func (c *Chainer) Extend(prev Head, frame []byte) Head {
	c.h.Reset()
	c.h.Write(prev[:])
	c.h.Write(frame)
	var next Head
	c.h.Sum(next[:0])
	return next
}

// Extend is the one-shot form of Chainer.Extend.
func Extend(prev Head, frame []byte) Head {
	return NewChainer().Extend(prev, frame)
}

// Merkle accumulates leaves left to right and yields the root. It
// keeps one pending subtree root per set bit of the leaf count, so
// memory is O(log n) regardless of how many leaves stream through.
type Merkle struct {
	h     hash.Hash
	stack []Head // pending subtree roots, biggest first
	count uint64
}

// NewMerkle returns an empty accumulator.
func NewMerkle() *Merkle { return &Merkle{h: sha256.New()} }

// LabelLeaf hashes one label extent into its leaf.
func (m *Merkle) LabelLeaf(vertex uint32, label []byte) Head {
	var pre [5]byte
	pre[0] = 0x00
	binary.LittleEndian.PutUint32(pre[1:], vertex)
	m.h.Reset()
	m.h.Write(pre[:])
	m.h.Write(label)
	var leaf Head
	m.h.Sum(leaf[:0])
	return leaf
}

// Add appends one leaf (use LabelLeaf to make one from an extent).
func (m *Merkle) Add(leaf Head) {
	m.stack = append(m.stack, leaf)
	m.count++
	// Each trailing zero bit of the new count is a completed pair:
	// merge equal-sized subtrees bottom-up.
	for n := m.count; n&1 == 0; n >>= 1 {
		a, b := m.stack[len(m.stack)-2], m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-2]
		m.stack = append(m.stack, m.node(a, b))
	}
}

// Root bags the pending subtrees right to left and returns the root.
// The accumulator stays usable: more leaves may be added after a Root
// call (the root of every prefix is well defined).
func (m *Merkle) Root() Head {
	if len(m.stack) == 0 {
		return Head{}
	}
	root := m.stack[len(m.stack)-1]
	for i := len(m.stack) - 2; i >= 0; i-- {
		root = m.node(m.stack[i], root)
	}
	return root
}

func (m *Merkle) node(a, b Head) Head {
	m.h.Reset()
	m.h.Write([]byte{0x01})
	m.h.Write(a[:])
	m.h.Write(b[:])
	var out Head
	m.h.Sum(out[:0])
	return out
}
