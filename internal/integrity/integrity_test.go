package integrity

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

func TestChainDefinition(t *testing.T) {
	// head(n) = SHA-256(head(n-1) || frame(n)), from a zero genesis —
	// spelled out longhand so the optimized Chainer is pinned to the
	// definition, not to itself.
	frames := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var want Head
	for _, f := range frames {
		h := sha256.New()
		h.Write(want[:])
		h.Write(f)
		copy(want[:], h.Sum(nil))
	}

	var got Head
	for _, f := range frames {
		got = Extend(got, f)
	}
	if got != want {
		t.Fatalf("Extend chain %s, definition says %s", got, want)
	}

	c := NewChainer()
	var reused Head
	for _, f := range frames {
		reused = c.Extend(reused, f)
	}
	if reused != want {
		t.Fatalf("Chainer chain %s, definition says %s", reused, want)
	}
}

func TestChainOrderAndContentSensitivity(t *testing.T) {
	a := Extend(Extend(Head{}, []byte("x")), []byte("y"))
	b := Extend(Extend(Head{}, []byte("y")), []byte("x"))
	if a == b {
		t.Fatal("chain is order-insensitive")
	}
	c := Extend(Extend(Head{}, []byte("x")), []byte("z"))
	if a == c {
		t.Fatal("chain is content-insensitive")
	}
	// Concatenation boundaries matter: ["xy"] must differ from ["x","y"].
	d := Extend(Head{}, []byte("xy"))
	if a == d {
		t.Fatal("chain cannot tell two frames from their concatenation")
	}
}

func TestHeadHexRoundTrip(t *testing.T) {
	h := Extend(Head{}, []byte("frame"))
	s := h.String()
	if len(s) != 64 || s != hex.EncodeToString(h[:]) {
		t.Fatalf("String() = %q", s)
	}
	back, err := ParseHead(s)
	if err != nil || back != h {
		t.Fatalf("ParseHead(%q) = %v, %v", s, back, err)
	}
	if _, err := ParseHead("zz"); err == nil {
		t.Fatal("ParseHead accepted junk")
	}
	var zero Head
	if !zero.IsZero() || h.IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

// naiveRoot is the reference Merkle definition: leaves in order, pairs
// combined level by level, an odd node at the end of a level promoted
// as-is (which is exactly what bagging the streaming stack right to
// left produces).
func naiveRoot(leaves []Head) Head {
	if len(leaves) == 0 {
		return Head{}
	}
	level := append([]Head(nil), leaves...)
	for len(level) > 1 {
		var next []Head
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				h := sha256.New()
				h.Write([]byte{0x01})
				h.Write(level[i][:])
				h.Write(level[i+1][:])
				var n Head
				copy(n[:], h.Sum(nil))
				next = append(next, n)
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

func TestMerkleMatchesNaiveDefinition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 257} {
		m := NewMerkle()
		var leaves []Head
		for i := 0; i < n; i++ {
			leaf := m.LabelLeaf(uint32(i), []byte{byte(i), byte(i >> 3), 0xAB})
			leaves = append(leaves, leaf)
			m.Add(leaf)
		}
		if got, want := m.Root(), naiveRoot(leaves); got != want {
			t.Fatalf("n=%d: streaming root %s, naive root %s", n, got, want)
		}
	}
}

func TestMerkleSensitivity(t *testing.T) {
	build := func(mutate func(v uint32, label []byte) (uint32, []byte)) Head {
		m := NewMerkle()
		for i := uint32(0); i < 9; i++ {
			v, label := mutate(i, []byte{byte(i), 0x7F})
			m.Add(m.LabelLeaf(v, label))
		}
		return m.Root()
	}
	id := func(v uint32, l []byte) (uint32, []byte) { return v, l }
	base := build(id)
	if base != build(id) {
		t.Fatal("root is not deterministic")
	}
	flipped := build(func(v uint32, l []byte) (uint32, []byte) {
		if v == 4 {
			l[0] ^= 0x01
		}
		return v, l
	})
	if flipped == base {
		t.Fatal("flipping one label byte left the root unchanged")
	}
	moved := build(func(v uint32, l []byte) (uint32, []byte) {
		if v == 4 {
			return 1000, l
		}
		return v, l
	})
	if moved == base {
		t.Fatal("reassigning a label to another vertex left the root unchanged")
	}
}
