package integrity

import "testing"

// BenchmarkChainExtend prices one chain link over a WAL-frame-sized
// input — the per-record cost the batched flush pass pays.
func BenchmarkChainExtend(b *testing.B) {
	frame := make([]byte, 40)
	var h Head
	c := NewChainer()
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		h = c.Extend(h, frame)
	}
	_ = h
}

// BenchmarkMerkleRoot prices the streaming Merkle accumulation over
// 100k label leaves — the snapshot-stamping cost.
func BenchmarkMerkleRoot(b *testing.B) {
	label := []byte{1, 2, 3, 4, 5, 6}
	for i := 0; i < b.N; i++ {
		m := NewMerkle()
		for v := uint32(0); v < 100_000; v++ {
			m.Add(m.LabelLeaf(v, label))
		}
		_ = m.Root()
	}
	b.ReportMetric(float64(b.N)*100_000/b.Elapsed().Seconds(), "leaves/sec")
}
