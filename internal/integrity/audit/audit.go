// Package audit is the offline integrity auditor behind cmd/wfverify:
// it walks a durable data directory — with the server stopped or from
// a filesystem snapshot — and re-verifies every session's
// tamper-evidence anchors from the raw files alone, with no registry,
// no replay and no labeling.
//
// For a session whose latest snapshot is integrity-stamped (WFSNAP03)
// the audit proves three things:
//
//  1. the snapshot's label extents hash to its recorded Merkle root
//     (the labels served zero-copy were not rewritten);
//  2. the WAL's bytes below the snapshot's watermark chain to the
//     head the snapshot anchored (history the next restore will skip
//     replaying was not rewritten — the check a boot-time replay
//     cannot make for it);
//  3. the WAL's tail past the watermark is structurally intact, and
//     its records extend the chain to a final head the report carries
//     for comparison against an externally recorded anchor (the
//     /integrity endpoint's chain_head).
//
// Without an external anchor the tail past the last snapshot is
// CRC-protected only: a rewrite there that fixes the CRCs is
// undetectable from the directory alone, because the chain head that
// committed to those bytes lived in server memory. Record the
// endpoint's anchors somewhere the server cannot touch to close that
// window.
//
// Sessions whose snapshot predates the integrity format (WFSNAP01/02,
// or no snapshot at all) report StatusUnavailable, not a violation:
// old data is legal, it just proves nothing.
package audit

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"wfreach/internal/arena"
	"wfreach/internal/integrity"
	"wfreach/internal/wal"
)

// The durable layout audited, mirrored from internal/service (the
// audit must not import the service, which would drag the whole
// labeling engine into a read-only tool).
const (
	metaFile = "session.json"
	walFile  = "events.wal"
	snapFile = "labels.snap"
)

// Status classifies one session's audit outcome.
type Status string

const (
	// StatusVerified: the snapshot's Merkle root and watermark chain
	// anchor both check out against the bytes on disk.
	StatusVerified Status = "verified"
	// StatusUnavailable: the session predates integrity stamping
	// (WFSNAP01/02 snapshot, or none); nothing to verify, nothing
	// wrong.
	StatusUnavailable Status = "unavailable"
	// StatusViolation: the bytes on disk contradict a recorded anchor.
	StatusViolation Status = "violation"
)

// SessionReport is one session's audit result.
type SessionReport struct {
	Session string
	Status  Status
	// Err describes the violation (Status == StatusViolation) or the
	// IO/decode failure that prevented the audit.
	Err string

	// SnapshotWatermark is the event count the snapshot covers;
	// AnchorHead the chain head it recorded at that point and
	// MerkleRoot its label-extent root (all zero/empty without a v3
	// snapshot).
	SnapshotWatermark int64
	AnchorHead        string
	MerkleRoot        string

	// WALRecords counts the intact records in the WAL and ChainHead is
	// the hash chain over all of them — the value to compare against
	// an externally recorded /integrity chain_head. TailRecords of
	// them lie past the snapshot watermark and are CRC-protected only.
	WALRecords  int64
	ChainHead   string
	TailRecords int64
}

// Report is a whole data directory's audit.
type Report struct {
	Dir      string
	Sessions []SessionReport
}

// Violations counts the sessions whose audit found tampering (or
// could not run at all).
func (r *Report) Violations() int {
	n := 0
	for _, s := range r.Sessions {
		if s.Status == StatusViolation {
			n++
		}
	}
	return n
}

// VerifyDir audits every session under the data directory (any
// subdirectory holding a session.json, exactly the set a restore
// would pick up).
func VerifyDir(dir string) (*Report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rep := &Report{Dir: dir}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sdir := filepath.Join(dir, e.Name())
		if _, err := os.Stat(filepath.Join(sdir, metaFile)); errors.Is(err, fs.ErrNotExist) {
			continue
		}
		rep.Sessions = append(rep.Sessions, VerifySession(sdir, ""))
	}
	sort.Slice(rep.Sessions, func(i, j int) bool { return rep.Sessions[i].Session < rep.Sessions[j].Session })
	return rep, nil
}

// VerifySession audits one session directory. expectHead, when
// non-empty, is an externally recorded chain head (hex, from the
// /integrity endpoint) that the full WAL chain must land on — the
// only check that covers the tail past the last snapshot.
func VerifySession(sdir, expectHead string) SessionReport {
	rep := SessionReport{Session: filepath.Base(sdir), Status: StatusUnavailable}
	walPath := filepath.Join(sdir, walFile)

	// Decode the snapshot's anchors, if it has any.
	var seed integrity.Head // chain seed for the scan past the watermark
	var fromWm int64        // byte offset the tail scan starts at
	a, err := arena.Open(filepath.Join(sdir, snapFile))
	switch {
	case errors.Is(err, fs.ErrNotExist) || errors.Is(err, arena.ErrVersion):
		// No snapshot, or a pre-integrity format: chain from genesis.
	case err != nil:
		return rep.fail("open snapshot: %v", err)
	default:
		defer a.Close()
		root, anchor, stamped := a.Integrity()
		if !stamped { // WFSNAP02: sound, but anchors nothing
			break
		}
		rep.SnapshotWatermark = a.Events()
		rep.MerkleRoot = root.String()
		rep.AnchorHead = anchor.String()
		if err := a.VerifyMerkle(); err != nil {
			return rep.fail("%v", err)
		}
		// Re-chain the WAL below the watermark: every byte the next
		// restore would trust without replaying must still hash to the
		// head the snapshot committed to.
		head, n, err := wal.ChainTo(walPath, 0, a.WALBytes(), integrity.Head{})
		if err != nil {
			return rep.fail("chain below snapshot watermark: %v", err)
		}
		if head != anchor {
			return rep.fail("WAL chain head %s over records 1..%d does not match the snapshot's anchor %s: history below the watermark was rewritten", head, n, anchor)
		}
		rep.WALRecords = n
		seed, fromWm = head, a.WALBytes()
		rep.Status = StatusVerified
	}

	// Extend the chain over the tail (or, without a v3 snapshot, the
	// whole log). A torn tail — trailing bytes that never formed a
	// complete frame — is a legal crash artifact, but damage to a
	// complete record is corruption either way.
	head, n, _, err := wal.ChainScan(walPath, fromWm, seed)
	if err != nil {
		return rep.fail("chain WAL tail: %v", err)
	}
	rep.TailRecords = n
	rep.WALRecords += n
	rep.ChainHead = head.String()
	if expectHead != "" && rep.ChainHead != expectHead {
		return rep.fail("WAL chain head %s does not match the recorded anchor %s", rep.ChainHead, expectHead)
	}
	return rep
}

func (r SessionReport) fail(format string, args ...any) SessionReport {
	r.Status = StatusViolation
	r.Err = fmt.Sprintf(format, args...)
	return r
}
