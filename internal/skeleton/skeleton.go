// Package skeleton implements the static schemes used to label
// workflow specifications (Section 5.1): the skeleton labels that the
// dynamic scheme extends to runs. Two schemes from the paper's
// evaluation (Section 7.1) are provided:
//
//   - TCL precomputes the transitive closure using the triangular
//     scheme of Section 3.2: vertex v_i (in topological order) stores
//     i-1 bits, bit j meaning "v_j reaches v_i". Queries are O(1); the
//     total label store for a graph with n vertices is n(n-1)/2 bits.
//   - BFS stores no labels at all and answers each query with a
//     breadth-first search over the specification graph.
//
// Both exist in two flavors: a GraphScheme over a single graph (used
// by SKL over the global inlined specification) and a Scheme over all
// graphs of a specification (used by DRL).
package skeleton

import (
	"fmt"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// Kind selects a skeleton scheme.
type Kind uint8

const (
	// TCL is the precomputed transitive-closure scheme of Section 3.2.
	TCL Kind = iota
	// BFS answers queries by graph search, storing nothing.
	BFS
)

func (k Kind) String() string {
	switch k {
	case TCL:
		return "TCL"
	case BFS:
		return "BFS"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// GraphScheme answers reachability on one graph.
type GraphScheme interface {
	// Reaches reports v ;* w (reflexive).
	Reaches(v, w graph.VertexID) bool
	// Bits is the total label storage in bits (0 for BFS).
	Bits() int
	// Kind identifies the scheme.
	Kind() Kind
}

// NewGraphScheme builds a GraphScheme of the given kind over g.
func NewGraphScheme(k Kind, g *graph.Graph) GraphScheme {
	switch k {
	case TCL:
		return newGraphTCL(g)
	case BFS:
		return graphBFS{g}
	}
	panic(fmt.Sprintf("skeleton: unknown kind %d", k))
}

// graphTCL holds triangular closure rows in topological order.
type graphTCL struct {
	pos   []int      // vertex id -> topological position
	rows  [][]uint64 // position i -> bitset over positions < i
	words int
	n     int
}

func newGraphTCL(g *graph.Graph) *graphTCL {
	order := g.TopoOrder()
	n := len(order)
	t := &graphTCL{
		pos:   make([]int, g.NumVertices()),
		rows:  make([][]uint64, n),
		words: (n + 63) / 64,
		n:     n,
	}
	for i := range t.pos {
		t.pos[i] = -1
	}
	for i, v := range order {
		t.pos[v] = i
	}
	for i, v := range order {
		row := make([]uint64, t.words)
		for _, p := range g.In(v) {
			// Ancestors of v = union of ancestors of predecessors plus
			// the predecessors themselves.
			pp := t.pos[p]
			for w := range row {
				row[w] |= t.rows[pp][w]
			}
			row[pp/64] |= 1 << (uint(pp) % 64)
		}
		t.rows[i] = row
	}
	return t
}

func (t *graphTCL) Reaches(v, w graph.VertexID) bool {
	if int(v) >= len(t.pos) || int(w) >= len(t.pos) || v < 0 || w < 0 {
		return false
	}
	pv, pw := t.pos[v], t.pos[w]
	if pv < 0 || pw < 0 {
		return false
	}
	if pv == pw {
		return true
	}
	if pv > pw {
		return false
	}
	return t.rows[pw][pv/64]&(1<<(uint(pv)%64)) != 0
}

// Bits reports the Section 3.2 accounting: vertex v_i stores i-1 bits,
// so a graph with n vertices stores n(n-1)/2 bits in total (the
// vertex's index is implicit in its label length).
func (t *graphTCL) Bits() int { return t.n * (t.n - 1) / 2 }

func (t *graphTCL) Kind() Kind { return TCL }

type graphBFS struct{ g *graph.Graph }

func (b graphBFS) Reaches(v, w graph.VertexID) bool { return b.g.Reaches(v, w) }
func (b graphBFS) Bits() int                        { return 0 }
func (b graphBFS) Kind() Kind                       { return BFS }

// Scheme labels every graph of a specification and answers the π_G
// queries of Algorithm 1/4: reachability between two vertices of the
// same specification graph.
type Scheme struct {
	kind   Kind
	graphs []GraphScheme
}

// New builds skeleton labels for all graphs of the grammar's
// specification.
func New(k Kind, g *spec.Grammar) *Scheme {
	s := &Scheme{kind: k}
	for _, ng := range g.Spec().Graphs() {
		s.graphs = append(s.graphs, NewGraphScheme(k, ng.G))
	}
	return s
}

// Kind returns the scheme kind.
func (s *Scheme) Kind() Kind { return s.kind }

// Pi reports a ;* b for two vertices of the same specification graph;
// it panics if the refs name different graphs (Algorithm 4 only ever
// compares skeleton labels within one graph).
func (s *Scheme) Pi(a, b spec.VertexRef) bool {
	if a.Graph != b.Graph {
		panic("skeleton: π across specification graphs")
	}
	return s.graphs[a.Graph].Reaches(a.V, b.V)
}

// Bits returns the total skeleton storage in bits (Table 2's "Total
// Space").
func (s *Scheme) Bits() int {
	total := 0
	for _, g := range s.graphs {
		total += g.Bits()
	}
	return total
}

// GraphBits returns the label storage for one specification graph.
func (s *Scheme) GraphBits(id spec.GraphID) int { return s.graphs[id].Bits() }
