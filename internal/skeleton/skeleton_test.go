package skeleton_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func TestGraphTCLMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomDAG(rng, 20+rng.Intn(20), 0.2)
		tcl := skeleton.NewGraphScheme(skeleton.TCL, g)
		for v := 0; v < g.NumVertices(); v++ {
			for w := 0; w < g.NumVertices(); w++ {
				got := tcl.Reaches(graph.VertexID(v), graph.VertexID(w))
				want := g.Reaches(graph.VertexID(v), graph.VertexID(w))
				if got != want {
					t.Fatalf("trial %d: TCL(%d,%d)=%v, BFS=%v", trial, v, w, got, want)
				}
			}
		}
	}
}

func TestGraphTCLQuick(t *testing.T) {
	// Property: on random two-terminal graphs, TCL agrees with BFS for
	// random pairs.
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64, a, b uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := graph.RandomTwoTerminal(r, 12, 0.5, nil)
		tcl := skeleton.NewGraphScheme(skeleton.TCL, g)
		v := graph.VertexID(int(a) % g.NumVertices())
		w := graph.VertexID(int(b) % g.NumVertices())
		return tcl.Reaches(v, w) == g.Reaches(v, w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphTCLBitsTriangular(t *testing.T) {
	// Section 3.2: vertex v_i stores i-1 bits; a graph with n vertices
	// stores n(n-1)/2 in total.
	g := graph.New()
	for i := 0; i < 10; i++ {
		g.AddVertex("x")
	}
	for i := 0; i < 9; i++ {
		g.MustAddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	tcl := skeleton.NewGraphScheme(skeleton.TCL, g)
	if got := tcl.Bits(); got != 45 {
		t.Fatalf("Bits = %d, want 10*9/2 = 45", got)
	}
}

func TestGraphTCLOutOfRange(t *testing.T) {
	g := graph.RandomTwoTerminal(rand.New(rand.NewSource(1)), 5, 0.3, nil)
	tcl := skeleton.NewGraphScheme(skeleton.TCL, g)
	if tcl.Reaches(-1, 0) || tcl.Reaches(0, 99) {
		t.Fatal("out-of-range queries must be false")
	}
}

func TestGraphBFSIsZeroCost(t *testing.T) {
	g := graph.RandomTwoTerminal(rand.New(rand.NewSource(2)), 8, 0.4, nil)
	bfs := skeleton.NewGraphScheme(skeleton.BFS, g)
	if bfs.Bits() != 0 {
		t.Fatal("BFS stores no labels")
	}
	if bfs.Kind() != skeleton.BFS {
		t.Fatal("kind mismatch")
	}
	if !bfs.Reaches(0, graph.VertexID(g.NumVertices()-1)) {
		t.Fatal("source must reach sink")
	}
}

func TestSchemeOverSpec(t *testing.T) {
	s := wfspecs.RunningExample()
	g := spec.MustCompile(s)
	for _, kind := range []skeleton.Kind{skeleton.TCL, skeleton.BFS} {
		sch := skeleton.New(kind, g)
		if sch.Kind() != kind {
			t.Fatal("kind mismatch")
		}
		h3 := s.Implementations("A")[0]
		b, _ := s.ResolveName(h3, "B")
		c, _ := s.ResolveName(h3, "C")
		if !sch.Pi(spec.VertexRef{Graph: h3, V: b}, spec.VertexRef{Graph: h3, V: c}) {
			t.Fatalf("%v: B must reach C in h3", kind)
		}
		if sch.Pi(spec.VertexRef{Graph: h3, V: c}, spec.VertexRef{Graph: h3, V: b}) {
			t.Fatalf("%v: C must not reach B in h3", kind)
		}
	}
}

func TestSchemePiPanicsAcrossGraphs(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	sch := skeleton.New(skeleton.TCL, g)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-graph π must panic")
		}
	}()
	sch.Pi(spec.VertexRef{Graph: 0, V: 0}, spec.VertexRef{Graph: 1, V: 0})
}

func TestSchemeBitsAggregates(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	sch := skeleton.New(skeleton.TCL, g)
	// Graph sizes 3,3,3,4,2,2,3 → Σ n(n-1)/2 = 3+3+3+6+1+1+3 = 20.
	if got := sch.Bits(); got != 20 {
		t.Fatalf("Bits = %d, want 20", got)
	}
	if got := sch.GraphBits(0); got != 3 {
		t.Fatalf("GraphBits(g0) = %d, want 3", got)
	}
	if skeleton.New(skeleton.BFS, g).Bits() != 0 {
		t.Fatal("BFS spec scheme stores nothing")
	}
}

func TestSchemeAgreesWithClosureOnAllSpecGraphs(t *testing.T) {
	for _, s := range []*spec.Spec{
		wfspecs.RunningExample(), wfspecs.BioAID(), wfspecs.Fig6(), wfspecs.Fig12(),
	} {
		g := spec.MustCompile(s)
		tcl := skeleton.New(skeleton.TCL, g)
		bfs := skeleton.New(skeleton.BFS, g)
		for _, ng := range s.Graphs() {
			n := ng.G.NumVertices()
			for v := 0; v < n; v++ {
				for w := 0; w < n; w++ {
					a := spec.VertexRef{Graph: ng.ID, V: graph.VertexID(v)}
					b := spec.VertexRef{Graph: ng.ID, V: graph.VertexID(w)}
					want := g.Reaches(a, b)
					if tcl.Pi(a, b) != want {
						t.Fatalf("%s/%s: TCL π(%d,%d) != closure", s, ng.Label, v, w)
					}
					if bfs.Pi(a, b) != want {
						t.Fatalf("%s/%s: BFS π(%d,%d) != closure", s, ng.Label, v, w)
					}
				}
			}
		}
	}
}

func TestKindString(t *testing.T) {
	if skeleton.TCL.String() != "TCL" || skeleton.BFS.String() != "BFS" {
		t.Fatal("Kind.String wrong")
	}
}
