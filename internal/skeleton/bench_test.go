package skeleton_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func BenchmarkTCLBuildSpec(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAID())
	for i := 0; i < b.N; i++ {
		skeleton.New(skeleton.TCL, g)
	}
}

func BenchmarkTCLBuildGlobal(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	in, err := g.InlineAll()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skeleton.NewGraphScheme(skeleton.TCL, in.Graph)
	}
}

func benchPairs(g *graph.Graph, n int) [][2]graph.VertexID {
	rng := rand.New(rand.NewSource(3))
	out := make([][2]graph.VertexID, n)
	for i := range out {
		out[i] = [2]graph.VertexID{
			graph.VertexID(rng.Intn(g.NumVertices())),
			graph.VertexID(rng.Intn(g.NumVertices())),
		}
	}
	return out
}

func BenchmarkTCLQuery(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	in, _ := g.InlineAll()
	sch := skeleton.NewGraphScheme(skeleton.TCL, in.Graph)
	pairs := benchPairs(in.Graph, 1024)
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != sch.Reaches(p[0], p[1])
	}
	_ = sink
}

func BenchmarkBFSQuery(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	in, _ := g.InlineAll()
	sch := skeleton.NewGraphScheme(skeleton.BFS, in.Graph)
	pairs := benchPairs(in.Graph, 1024)
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != sch.Reaches(p[0], p[1])
	}
	_ = sink
}
