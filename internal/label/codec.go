package label

import (
	"fmt"
	"math/bits"
	"sort"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// Codec encodes labels into the canonical self-delimiting bit layout
// and measures their length. The layout per entry is:
//
//	type        2 bits
//	index       5-bit width header + that many value bits
//	skl         ⌈log₂ n_G⌉ bits (global spec-vertex number), N entries only
//	rec         1 presence bit (+ 2 flag bits) when the previous
//	            entry's node is an R node
//
// This realizes Algorithm 1's accounting (|entry| ≤ log θ_t + 2 +
// log n_G + 1 + 1 bits) with explicit self-delimiting framing so that
// encoded labels decode without any per-run metadata.
type Codec struct {
	ptrBits int
	offsets []int // graph id -> first global vertex number
	sizes   []int // graph id -> vertex count
	total   int   // total spec vertices
}

// NewCodec builds a codec for labels over the given grammar.
func NewCodec(g *spec.Grammar) *Codec {
	graphs := g.Spec().Graphs()
	c := &Codec{ptrBits: g.PointerBits()}
	for _, ng := range graphs {
		c.offsets = append(c.offsets, c.total)
		c.sizes = append(c.sizes, ng.G.NumVertices())
		c.total += ng.G.NumVertices()
	}
	return c
}

// PointerBits returns the skeleton-pointer width in bits.
func (c *Codec) PointerBits() int { return c.ptrBits }

// global converts a VertexRef into its global vertex number.
func (c *Codec) global(r spec.VertexRef) int {
	return c.offsets[r.Graph] + int(r.V)
}

// unglobal converts a global vertex number back into a VertexRef.
func (c *Codec) unglobal(n int) spec.VertexRef {
	g := sort.Search(len(c.offsets), func(i int) bool { return c.offsets[i] > n }) - 1
	return spec.VertexRef{Graph: spec.GraphID(g), V: graph.VertexID(n - c.offsets[g])}
}

// valueBits returns the bits needed for an index value (≥ 1). Note
// the int32 overflow trap a plain `v >= 1<<w` loop would hit for
// indexes needing 31 bits (the comparison would promote 1<<31 to a
// negative int32 and never terminate).
func valueBits(v int32) int {
	if v <= 0 {
		return 1
	}
	return bits.Len32(uint32(v))
}

// indexBits returns the self-delimiting wire cost of an index value: a
// 5-bit width header plus the value bits.
func indexBits(v int32) int { return 5 + valueBits(v) }

// BitLen returns the label length in bits under the paper's accounting
// (Algorithm 1 / Theorem 3): per entry, 2 type bits, the index's value
// bits (≤ log θ_t), the skeleton pointer (⌈log₂ n_G⌉, N entries only)
// and 2 recursion-flag bits for recursion-chain members. This is the
// quantity reported as "label length" throughout the evaluation; the
// wire format produced by Encode additionally frames each index with a
// 5-bit width header so labels are self-delimiting on disk (see
// EncodedBits).
func (c *Codec) BitLen(l Label) int {
	bits := 0
	prevR := false
	for _, e := range l.Entries {
		bits += 2 + valueBits(e.Index)
		if e.Type == N && !e.Skl.IsZero() {
			bits += c.ptrBits
		}
		if prevR {
			bits += 2
		}
		prevR = e.Type == R
	}
	return bits
}

// EncodedBits returns the exact wire size of the label in bits,
// including the self-delimiting framing of Encode.
func (c *Codec) EncodedBits(l Label) int { return len(c.Encode(l)) * 8 }

// Encode serializes a label into the canonical layout.
func (c *Codec) Encode(l Label) []byte {
	var w bitWriter
	w.write(uint64(len(l.Entries)), 8) // entry count frame (≤ 255 levels)
	prevR := false
	for _, e := range l.Entries {
		w.write(uint64(e.Type), 2)
		width := indexBits(e.Index) - 5
		w.write(uint64(width), 5)
		w.write(uint64(e.Index), width)
		if e.Type == N {
			if e.Skl.IsZero() {
				panic("label: N entry without skeleton pointer")
			}
			w.write(uint64(c.global(e.Skl)), c.ptrBits)
		}
		if prevR {
			if e.HasRec {
				w.write(1, 1)
				w.write(b2u(e.Rec1), 1)
				w.write(b2u(e.Rec2), 1)
			} else {
				w.write(0, 1)
			}
		}
		prevR = e.Type == R
	}
	return w.bytes()
}

// Decode parses an encoded label.
func (c *Codec) Decode(data []byte) (Label, error) {
	r := bitReader{data: data}
	n, err := r.read(8)
	if err != nil {
		return Label{}, err
	}
	entries := make([]Entry, 0, n)
	prevR := false
	for i := uint64(0); i < n; i++ {
		t, err := r.read(2)
		if err != nil {
			return Label{}, err
		}
		width, err := r.read(5)
		if err != nil {
			return Label{}, err
		}
		idx, err := r.read(int(width))
		if err != nil {
			return Label{}, err
		}
		e := Entry{Index: int32(idx), Type: NodeType(t), Skl: spec.NoRef}
		if e.Type == N {
			g, err := r.read(c.ptrBits)
			if err != nil {
				return Label{}, err
			}
			if int(g) >= c.total {
				return Label{}, fmt.Errorf("label: skeleton pointer %d out of range", g)
			}
			e.Skl = c.unglobal(int(g))
		}
		if prevR {
			has, err := r.read(1)
			if err != nil {
				return Label{}, err
			}
			if has == 1 {
				r1, err := r.read(1)
				if err != nil {
					return Label{}, err
				}
				r2, err := r.read(1)
				if err != nil {
					return Label{}, err
				}
				e.HasRec, e.Rec1, e.Rec2 = true, r1 == 1, r2 == 1
			}
		}
		prevR = e.Type == R
		entries = append(entries, e)
	}
	return Label{Entries: entries}, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

type bitWriter struct {
	buf  []byte
	nbit uint
}

func (w *bitWriter) write(v uint64, bits int) {
	for i := bits - 1; i >= 0; i-- {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		if v>>uint(i)&1 == 1 {
			w.buf[len(w.buf)-1] |= 1 << (7 - w.nbit%8)
		}
		w.nbit++
	}
}

func (w *bitWriter) bytes() []byte { return w.buf }

type bitReader struct {
	data []byte
	pos  uint
}

func (r *bitReader) read(bits int) (uint64, error) {
	var v uint64
	for i := 0; i < bits; i++ {
		byteIdx := r.pos / 8
		if int(byteIdx) >= len(r.data) {
			return 0, fmt.Errorf("label: truncated encoding")
		}
		bit := r.data[byteIdx] >> (7 - r.pos%8) & 1
		v = v<<1 | uint64(bit)
		r.pos++
	}
	return v, nil
}
