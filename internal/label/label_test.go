package label_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func codec(t *testing.T) *label.Codec {
	t.Helper()
	return label.NewCodec(spec.MustCompile(wfspecs.RunningExample()))
}

func ref(g, v int) spec.VertexRef {
	return spec.VertexRef{Graph: spec.GraphID(g), V: graph.VertexID(v)}
}

func TestAppendImmutability(t *testing.T) {
	base := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 0)})
	a := base.Append(label.Entry{Index: 1, Type: label.L, Skl: spec.NoRef})
	b := base.Append(label.Entry{Index: 2, Type: label.F, Skl: spec.NoRef})
	if a.Entries[1].Index != 1 || b.Entries[1].Index != 2 {
		t.Fatal("appends interfered")
	}
	if base.Len() != 1 {
		t.Fatal("base label mutated")
	}
	if base.IsZero() || !(label.Label{}).IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestEqual(t *testing.T) {
	a := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 1)})
	b := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 1)})
	c := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 2)})
	if !a.Equal(b) || a.Equal(c) || a.Equal(label.Label{}) {
		t.Fatal("Equal wrong")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := codec(t)
	l := label.Label{}.
		Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 1)}).
		Append(label.Entry{Index: 1, Type: label.L, Skl: spec.NoRef}).
		Append(label.Entry{Index: 2, Type: label.N, Skl: ref(1, 1)}).
		Append(label.Entry{Index: 1, Type: label.R, Skl: spec.NoRef}).
		Append(label.Entry{Index: 1, Type: label.N, Skl: ref(3, 2), HasRec: true, Rec1: true, Rec2: false}).
		Append(label.Entry{Index: 1, Type: label.N, Skl: ref(3, 1)})
	enc := c.Encode(l)
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(l) {
		t.Fatalf("round trip mismatch:\n in: %s\nout: %s", l, dec)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	c := codec(t)
	g := spec.MustCompile(wfspecs.RunningExample())
	graphs := g.Spec().Graphs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l label.Label
		depth := 1 + rng.Intn(8)
		prevR := false
		for i := 0; i < depth; i++ {
			e := label.Entry{Index: int32(rng.Intn(1000)), Skl: spec.NoRef}
			switch rng.Intn(4) {
			case 0:
				e.Type = label.L
			case 1:
				e.Type = label.F
			case 2:
				e.Type = label.R
			default:
				e.Type = label.N
				gid := rng.Intn(len(graphs))
				e.Skl = ref(gid, rng.Intn(graphs[gid].G.NumVertices()))
			}
			if prevR && rng.Intn(2) == 0 {
				e.HasRec, e.Rec1, e.Rec2 = true, rng.Intn(2) == 0, rng.Intn(2) == 0
			}
			prevR = e.Type == label.R
			l = l.Append(e)
		}
		dec, err := c.Decode(c.Encode(l))
		return err == nil && dec.Equal(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitLenVersusEncodedSize(t *testing.T) {
	// BitLen uses the paper's word-RAM accounting; Encode adds a 5-bit
	// width header per index, an 8-bit entry-count frame, a presence
	// bit per R-chain member, and byte padding.
	c := codec(t)
	l := label.Label{}.
		Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 0)}).
		Append(label.Entry{Index: 5, Type: label.L, Skl: spec.NoRef}).
		Append(label.Entry{Index: 117, Type: label.N, Skl: ref(2, 1)})
	bits := c.BitLen(l)
	enc := c.EncodedBits(l)
	if enc < bits+8+5*l.Len() || enc > bits+8+5*l.Len()+l.Len()+16 {
		t.Fatalf("encoded %d bits for BitLen %d", enc, bits)
	}
}

func TestBitLenComponents(t *testing.T) {
	c := codec(t)
	// Single root entry: 2 (type) + 1 (index 0) + ptr bits.
	l := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 0)})
	want := 2 + 1 + c.PointerBits()
	if got := c.BitLen(l); got != want {
		t.Fatalf("BitLen = %d, want %d", got, want)
	}
	// Index widths grow logarithmically: index 1 costs 1 bit, index 2-3
	// cost 2, index 1000 costs 10 (the log θ_t term of Theorem 3).
	grow := func(idx int32) int {
		ll := label.Label{}.Append(label.Entry{Index: idx, Type: label.L, Skl: spec.NoRef})
		return c.BitLen(ll)
	}
	if grow(1) != 2+1 || grow(3) != 2+2 || grow(1000) != 2+10 {
		t.Fatalf("index widths wrong: %d %d %d", grow(1), grow(3), grow(1000))
	}
	// Special entries carry no pointer.
	if grow(0) >= want {
		t.Fatal("special entry should be cheaper than N entry")
	}
}

func TestRecFlagAccounting(t *testing.T) {
	c := codec(t)
	// Children of an R node always account 1+1 recursion-flag bits
	// (Algorithm 1's accounting), whether or not the flags are set.
	under := label.Label{}.
		Append(label.Entry{Index: 1, Type: label.R, Skl: spec.NoRef}).
		Append(label.Entry{Index: 1, Type: label.N, Skl: ref(3, 0), HasRec: true, Rec1: true})
	plain := label.Label{}.
		Append(label.Entry{Index: 1, Type: label.L, Skl: spec.NoRef}).
		Append(label.Entry{Index: 1, Type: label.N, Skl: ref(3, 0)})
	if c.BitLen(under) != c.BitLen(plain)+2 {
		t.Fatalf("R-chain member should cost 2 extra bits: %d vs %d",
			c.BitLen(under), c.BitLen(plain))
	}
}

func TestDecodeErrors(t *testing.T) {
	c := codec(t)
	if _, err := c.Decode(nil); err == nil {
		t.Fatal("decoding empty input must fail")
	}
	l := label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 0)})
	enc := c.Encode(l)
	if _, err := c.Decode(enc[:1]); err == nil {
		t.Fatal("decoding truncated input must fail")
	}
}

func TestEncodePanicsOnMissingPointer(t *testing.T) {
	c := codec(t)
	defer func() {
		if recover() == nil {
			t.Fatal("N entry without skeleton pointer must panic")
		}
	}()
	c.Encode(label.Label{}.Append(label.Entry{Index: 0, Type: label.N, Skl: spec.NoRef}))
}

func TestEntryAndLabelString(t *testing.T) {
	l := label.Label{}.
		Append(label.Entry{Index: 0, Type: label.N, Skl: ref(0, 1)}).
		Append(label.Entry{Index: 1, Type: label.R, Skl: spec.NoRef}).
		Append(label.Entry{Index: 1, Type: label.N, Skl: ref(3, 0), HasRec: true, Rec1: true})
	s := l.String()
	for _, want := range []string{"(0,N,g0:1)", "(1,R)", "true,false"} {
		if !contains(s, want) {
			t.Fatalf("String() = %s missing %q", s, want)
		}
	}
	if label.L.String() != "L" || label.NodeType(9).String() == "" {
		t.Fatal("NodeType.String wrong")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
