// Package label defines the reachability labels of the dynamic scheme:
// a label is the list of entries (index, type, skl, rec1, rec2) built
// by Algorithm 1, one entry per level of the vertex's path in the
// explicit parse tree. The package also provides the canonical
// self-delimiting binary encoding used for all label-length
// measurements (Figures 14 and 17-20) and a codec that round-trips
// labels through their encoded form.
package label

import (
	"fmt"
	"strings"

	"wfreach/internal/spec"
)

// NodeType is the type of an explicit-parse-tree node (Algorithm 1's
// "type" field): L (loop), F (fork), R (recursive) or N (non-special).
type NodeType uint8

const (
	// N marks a non-special node: an instance of a specification graph.
	N NodeType = iota
	// L marks a loop node whose children are series copies.
	L
	// F marks a fork node whose children are parallel copies.
	F
	// R marks a recursion node whose children form a linear recursion
	// chain.
	R
)

func (t NodeType) String() string {
	switch t {
	case N:
		return "N"
	case L:
		return "L"
	case F:
		return "F"
	case R:
		return "R"
	}
	return fmt.Sprintf("NodeType(%d)", uint8(t))
}

// Entry is one level of a reachability label (Algorithm 1): the child
// index of the tree node at this level, the node's type, and — for
// non-special nodes — the skeleton-label pointer of the vertex's
// origin at this level plus, for members of a recursion chain, the two
// recursion flags (origin reaches the recursive vertex / is reached by
// it).
type Entry struct {
	Index int32
	Type  NodeType
	// Skl points to the skeleton label of the origin (spec.NoRef for
	// special nodes, whose entries carry no skeleton information).
	Skl spec.VertexRef
	// HasRec reports whether the recursion flags are meaningful: the
	// entry's node is a recursion-chain member whose graph has a
	// designated recursive vertex.
	HasRec     bool
	Rec1, Rec2 bool
}

func (e Entry) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "(%d,%s", e.Index, e.Type)
	if !e.Skl.IsZero() {
		fmt.Fprintf(&b, ",g%d:%d", e.Skl.Graph, e.Skl.V)
	}
	if e.HasRec {
		fmt.Fprintf(&b, ",%v,%v", e.Rec1, e.Rec2)
	}
	b.WriteByte(')')
	return b.String()
}

// Label is a reachability label: the entry list φ_g(v) of Algorithm 3.
// Labels are immutable once assigned; the labelers build each label by
// appending one entry to a shared prefix, so entry slices must never
// be mutated in place.
type Label struct {
	Entries []Entry
}

// Append returns a new label extending l with one entry. The receiver
// is not modified; the underlying array is not shared with future
// appends (full copy), preserving immutability of issued labels.
func (l Label) Append(e Entry) Label {
	entries := make([]Entry, len(l.Entries)+1)
	copy(entries, l.Entries)
	entries[len(l.Entries)] = e
	return Label{Entries: entries}
}

// Len returns the number of entries.
func (l Label) Len() int { return len(l.Entries) }

// IsZero reports whether the label is unassigned.
func (l Label) IsZero() bool { return l.Entries == nil }

// Equal reports structural equality.
func (l Label) Equal(o Label) bool {
	if len(l.Entries) != len(o.Entries) {
		return false
	}
	for i := range l.Entries {
		if l.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return true
}

func (l Label) String() string {
	parts := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
