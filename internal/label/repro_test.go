package label_test

import (
	"testing"

	"wfreach/internal/label"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// TestRegressionWideIndexRoundTrip pins the fuzzer-found bug where an
// index needing 31 value bits sent the width computation into an
// int32-overflow infinite loop (`v >= 1<<w` promotes 1<<31 to a
// negative int32). The input decodes to a label with index 1111740226
// and must re-encode and round-trip in finite time.
func TestRegressionWideIndexRoundTrip(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	c := label.NewCodec(g)
	data := []byte("\x05\tl\x7f\t\x0f=\tf\x1e\xb9\xa8\x7f\xa3e\x00d(\x00")
	l, err := c.Decode(data)
	if err != nil {
		t.Fatalf("seed input no longer decodes: %v", err)
	}
	l2, err := c.Decode(c.Encode(l))
	if err != nil || !l2.Equal(l) {
		t.Fatalf("round trip: err=%v\n in: %s\nout: %s", err, l, l2)
	}
	// Direct check of the widest legal index.
	wide := label.Label{}.Append(label.Entry{Index: 1<<31 - 1, Type: label.L, Skl: spec.NoRef})
	w2, err := c.Decode(c.Encode(wide))
	if err != nil || !w2.Equal(wide) {
		t.Fatalf("max-index round trip failed: %v", err)
	}
	if got := c.BitLen(wide); got != 2+31 {
		t.Fatalf("BitLen(max index) = %d, want 33", got)
	}
}
