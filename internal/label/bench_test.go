package label_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func benchLabels(n int) ([]label.Label, *label.Codec) {
	g := spec.MustCompile(wfspecs.RunningExample())
	c := label.NewCodec(g)
	graphs := g.Spec().Graphs()
	rng := rand.New(rand.NewSource(9))
	out := make([]label.Label, n)
	for i := range out {
		var l label.Label
		depth := 3 + rng.Intn(6)
		for d := 0; d < depth; d++ {
			e := label.Entry{Index: int32(rng.Intn(500)), Skl: spec.NoRef}
			if d%2 == 0 {
				gid := rng.Intn(len(graphs))
				e.Type = label.N
				e.Skl = spec.VertexRef{Graph: spec.GraphID(gid),
					V: graph.VertexID(rng.Intn(graphs[gid].G.NumVertices()))}
			} else {
				e.Type = label.L
			}
			l = l.Append(e)
		}
		out[i] = l
	}
	return out, c
}

func BenchmarkEncode(b *testing.B) {
	ls, c := benchLabels(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Encode(ls[i%len(ls)])
	}
}

func BenchmarkDecode(b *testing.B) {
	ls, c := benchLabels(1024)
	enc := make([][]byte, len(ls))
	for i := range ls {
		enc[i] = c.Encode(ls[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc[i%len(enc)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBitLen(b *testing.B) {
	ls, c := benchLabels(1024)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += c.BitLen(ls[i%len(ls)])
	}
	_ = total
}

// FuzzDecode: arbitrary bytes must never panic the decoder — they
// either round-trip or error.
func FuzzDecode(f *testing.F) {
	ls, c := benchLabels(8)
	for _, l := range ls {
		f.Add(c.Encode(l))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x12})
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := c.Decode(data)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same label.
		l2, err := c.Decode(c.Encode(l))
		if err != nil || !l2.Equal(l) {
			t.Fatalf("re-decode mismatch: %v / %s vs %s", err, l, l2)
		}
	})
}
