//go:build !linux

package arena

import (
	"fmt"
	"os"
)

// openFile reads the whole file into memory — the portable fallback
// for platforms where the package does not use mmap. The Arena API is
// identical; only the zero-page-in restore property is lost.
func openFile(path string) (data []byte, mapped bool, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("arena: %w", err)
	}
	return data, false, nil
}

// unmapFile is a no-op for heap-backed arenas (never called: openFile
// reports mapped=false).
func unmapFile([]byte) error { return nil }
