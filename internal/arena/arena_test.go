package arena

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/graph"
)

// writeOpen round-trips entries through a file.
func writeOpen(t *testing.T, meta Meta, entries []Entry) *Arena {
	t.Helper()
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := Write(path, meta, entries); err != nil {
		t.Fatalf("Write: %v", err)
	}
	a, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	return a
}

func TestRoundTripDense(t *testing.T) {
	entries := make([]Entry, 100)
	want := make(map[graph.VertexID][]byte)
	for i := range entries {
		enc := []byte(fmt.Sprintf("label-%03d", i))
		entries[i] = Entry{V: graph.VertexID(i), Enc: enc}
		want[graph.VertexID(i)] = enc
	}
	// Shuffle: Write must sort.
	rand.New(rand.NewSource(1)).Shuffle(len(entries), func(i, j int) {
		entries[i], entries[j] = entries[j], entries[i]
	})
	a := writeOpen(t, Meta{Events: 100, WALBytes: 4321}, entries)
	if a.Events() != 100 || a.WALBytes() != 4321 || a.Count() != 100 {
		t.Fatalf("meta = %+v count %d", a.Meta(), a.Count())
	}
	if !a.dense {
		t.Fatal("contiguous vertex ids should take the dense fast path")
	}
	for v, enc := range want {
		got, ok := a.Get(v)
		if !ok || !bytes.Equal(got, enc) {
			t.Fatalf("Get(%d) = %q, %v; want %q", v, got, ok, enc)
		}
	}
	for _, v := range []graph.VertexID{-1, 100, 1 << 20} {
		if _, ok := a.Get(v); ok {
			t.Fatalf("Get(%d) found a label that was never written", v)
		}
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestRoundTripSparse(t *testing.T) {
	vs := []graph.VertexID{3, 7, 8, 100, 5000, 1 << 20}
	entries := make([]Entry, len(vs))
	for i, v := range vs {
		entries[i] = Entry{V: v, Enc: []byte{byte(i), byte(i + 1)}}
	}
	a := writeOpen(t, Meta{}, entries)
	if a.dense {
		t.Fatal("sparse ids must not be marked dense")
	}
	for i, v := range vs {
		got, ok := a.Get(v)
		if !ok || !bytes.Equal(got, []byte{byte(i), byte(i + 1)}) {
			t.Fatalf("Get(%d) = %q, %v", v, got, ok)
		}
	}
	for _, v := range []graph.VertexID{0, 4, 99, 101, 1<<20 + 1} {
		if _, ok := a.Get(v); ok {
			t.Fatalf("Get(%d) found a label that was never written", v)
		}
	}
	var ranged []graph.VertexID
	a.Range(func(v graph.VertexID, enc []byte) bool {
		ranged = append(ranged, v)
		return true
	})
	if len(ranged) != len(vs) {
		t.Fatalf("Range visited %v, want %v", ranged, vs)
	}
	for i := range vs {
		if ranged[i] != vs[i] {
			t.Fatalf("Range order %v, want ascending %v", ranged, vs)
		}
	}
}

func TestEmptyArena(t *testing.T) {
	a := writeOpen(t, Meta{Events: 0}, nil)
	if a.Count() != 0 || a.LabelBytes() != 0 {
		t.Fatalf("empty arena has count %d, %d label bytes", a.Count(), a.LabelBytes())
	}
	if _, ok := a.Get(0); ok {
		t.Fatal("empty arena served a label")
	}
}

func TestEmptyLabels(t *testing.T) {
	// Zero-length encodings are legal entries (not produced by the
	// codec today, but the format must not conflate length 0 with
	// absence).
	a := writeOpen(t, Meta{}, []Entry{{V: 1, Enc: nil}, {V: 2, Enc: []byte("x")}, {V: 3, Enc: nil}})
	if enc, ok := a.Get(1); !ok || len(enc) != 0 {
		t.Fatalf("Get(1) = %q, %v", enc, ok)
	}
	if enc, ok := a.Get(2); !ok || string(enc) != "x" {
		t.Fatalf("Get(2) = %q, %v", enc, ok)
	}
}

func TestWriteRejectsDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	_, err := Write(path, Meta{}, []Entry{{V: 5, Enc: []byte("a")}, {V: 5, Enc: []byte("b")}})
	if err == nil {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	entries := func() []Entry {
		return []Entry{{V: 9, Enc: []byte("i")}, {V: 2, Enc: []byte("b")}, {V: 5, Enc: []byte("e")}}
	}
	p1, p2 := filepath.Join(dir, "a.snap"), filepath.Join(dir, "b.snap")
	if _, err := Write(p1, Meta{Events: 3, WALBytes: 77}, entries()); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(p2, Meta{Events: 3, WALBytes: 77}, entries()); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical states produced different files")
	}
}

func TestOpenRejectsV1Magic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	body := append([]byte("WFSNAP01"), make([]byte, 64)...)
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("v1 magic: got %v, want ErrVersion", err)
	}
}

// corrupt writes a valid arena, applies mutate to its bytes, and
// returns the Open error.
func corrupt(t *testing.T, mutate func(b []byte) []byte) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "labels.snap")
	entries := []Entry{{V: 1, Enc: []byte("aa")}, {V: 2, Enc: []byte("bbb")}, {V: 9, Enc: []byte("c")}}
	if _, err := Write(path, Meta{Events: 3, WALBytes: 60}, entries); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(path)
	if err == nil {
		a.Close()
	}
	return err
}

func TestOpenRejectsCorruption(t *testing.T) {
	cases := map[string]func(b []byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:20] },
		"truncated index":  func(b []byte) []byte { return b[:headerSize+4] },
		"truncated labels": func(b []byte) []byte { return b[:len(b)-2] },
		"trailing garbage": func(b []byte) []byte { return append(b, 0xff) },
		"index bit flip":   func(b []byte) []byte { b[headerSize+3] ^= 0x40; return b },
		"count inflated":   func(b []byte) []byte { binary.LittleEndian.PutUint64(b[24:32], 1<<40); return b },
		"overlapping extent": func(b []byte) []byte {
			// Point entry 1's offset back into entry 0's extent and fix
			// the index CRC so only the extent check can object.
			binary.LittleEndian.PutUint64(b[headerSize+entrySize+8:], 0)
			reseal(b)
			return b
		},
		"extent past region": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+2*entrySize+4:], 1<<20)
			reseal(b)
			return b
		},
		"unsorted index": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize:], 7) // 7 > next entry's vertex 2
			reseal(b)
			return b
		},
	}
	for name, mutate := range cases {
		if err := corrupt(t, mutate); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// reseal recomputes the index CRC after a deliberate index mutation,
// so structural validation (not the checksum) is what gets exercised.
func reseal(b []byte) {
	count := binary.LittleEndian.Uint64(b[24:32])
	index := b[headerSize : headerSize+count*entrySize]
	h := crc32.NewIEEE()
	h.Write(b[8:40])
	h.Write(index)
	binary.LittleEndian.PutUint32(b[44:48], h.Sum32())
}

func TestVerifyCatchesLabelRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := Write(path, Meta{}, []Entry{{V: 0, Enc: []byte("hello")}}); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0x01 // flip a label byte; header and index untouched
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(path)
	if err != nil {
		t.Fatalf("Open should accept label rot (index is intact): %v", err)
	}
	defer a.Close()
	if err := a.Verify(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify: got %v, want ErrCorrupt", err)
	}
}
