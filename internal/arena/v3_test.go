package arena

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/integrity"
)

func v3Entries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{V: graph.VertexID(i * 3), Enc: []byte{byte(i), byte(i >> 8), 0x5A, byte(i * 7)}}
	}
	return out
}

func TestV3RoundTripAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	chain := integrity.Extend(integrity.Head{}, []byte("pretend-wal"))
	entries := v3Entries(500)
	root, err := Write(path, Meta{Events: 500, WALBytes: 9000, ChainHead: chain, HasChain: true}, entries)
	if err != nil {
		t.Fatal(err)
	}
	if root.IsZero() {
		t.Fatal("Write returned a zero Merkle root for a non-empty arena")
	}

	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	gotRoot, gotChain, ok := a.Integrity()
	if !ok || gotRoot != root || gotChain != chain {
		t.Fatalf("Integrity() = (%s, %s, %v), want (%s, %s, true)", gotRoot, gotChain, ok, root, chain)
	}
	if !a.Meta().HasChain || a.Meta().ChainHead != chain {
		t.Fatalf("Meta does not carry the chain head")
	}
	if err := a.VerifyMerkle(); err != nil {
		t.Fatalf("VerifyMerkle on a pristine arena: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Fatalf("label CRC verify: %v", err)
	}
	// The root matches an independent recomputation from the entries.
	m := integrity.NewMerkle()
	for _, e := range entries {
		m.Add(m.LabelLeaf(uint32(e.V), e.Enc))
	}
	if want := m.Root(); want != root {
		t.Fatalf("stored root %s, independent recomputation %s", root, want)
	}
}

// TestV2ByteIdenticalWithoutChain: a Meta without HasChain must keep
// emitting the exact v2 format — old readers and golden fixtures see
// no difference.
func TestV2ByteIdenticalWithoutChain(t *testing.T) {
	dir := t.TempDir()
	entries := v3Entries(40)
	p2 := filepath.Join(dir, "v2.snap")
	if _, err := Write(p2, Meta{Events: 40, WALBytes: 512}, entries); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte(Magic)) {
		t.Fatalf("chainless write emitted magic %q, want %q", raw[:8], Magic)
	}
	a, err := Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, _, ok := a.Integrity(); ok {
		t.Fatal("a v2 arena claims integrity anchors")
	}
	if err := a.VerifyMerkle(); err != nil {
		t.Fatalf("VerifyMerkle on v2 must be a trivial pass, got %v", err)
	}
}

// TestV3TamperedExtentFailsMerkle flips one byte in the label region —
// with the label CRC patched so only the Merkle root can object.
func TestV3TamperedExtentFailsMerkle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := Write(path, Meta{Events: 300, HasChain: true}, v3Entries(300)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := int(binary.LittleEndian.Uint64(raw[24:32]))
	labelOff := headerSizeV3 + count*entrySize
	raw[labelOff+5] ^= 0x20
	// Patch the label-region CRC so the structural check stays green.
	binary.LittleEndian.PutUint32(raw[40:44], crc32.ChecksumIEEE(raw[labelOff:]))
	// And the index CRC, which covers header[8:108).
	idx := crc32.NewIEEE()
	idx.Write(raw[8 : headerSizeV3-4])
	idx.Write(raw[headerSizeV3:labelOff])
	binary.LittleEndian.PutUint32(raw[headerSizeV3-4:headerSizeV3], idx.Sum32())
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	a, err := Open(path)
	if err != nil {
		t.Fatalf("CRC-patched tamper must open cleanly, got %v", err)
	}
	defer a.Close()
	if err := a.Verify(); err != nil {
		t.Fatalf("label CRC was patched, Verify should pass: %v", err)
	}
	if err := a.VerifyMerkle(); err == nil {
		t.Fatal("VerifyMerkle accepted a rewritten label extent")
	}
}

// TestV3HeaderDamageCaught: an unpatched flip anywhere the index CRC
// covers — the integrity anchors included — fails at Open.
func TestV3HeaderDamageCaught(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := Write(path, Meta{Events: 10, HasChain: true}, v3Entries(10)); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	raw[50] ^= 0x01 // inside merkleRoot
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("Open accepted a flipped integrity anchor byte")
	}
}

// TestUnknownSnapVersionRejected: future formats in the WFSNAP lineage
// are ErrVersion, not garbage decode.
func TestUnknownSnapVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "labels.snap")
	if _, err := Write(path, Meta{Events: 10, HasChain: true}, v3Entries(10)); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	copy(raw, "WFSNAP09")
	os.WriteFile(path, raw, 0o644)
	if _, err := Open(path); !errors.Is(err, ErrVersion) {
		t.Fatalf("Open = %v, want ErrVersion", err)
	}
}
