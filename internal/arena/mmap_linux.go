//go:build linux

package arena

import (
	"fmt"
	"os"
	"syscall"
)

// openFile maps the file at path read-only. MAP_SHARED + PROT_READ:
// the pages are backed by the file (and shared with any other process
// mapping the same snapshot), never written, and paged in lazily — an
// arena of gigabytes opens in microseconds and only the bytes queries
// actually touch ever reach memory.
func openFile(path string) (data []byte, mapped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("arena: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("arena: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		// mmap rejects zero-length mappings; an empty file is just a
		// corrupt arena, reported by parse on the empty slice.
		return []byte{}, false, nil
	}
	if size != int64(int(size)) {
		return nil, false, fmt.Errorf("arena: %s: %d bytes exceeds the address space", path, size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("arena: mmap %s: %w", path, err)
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by openFile.
func unmapFile(data []byte) error {
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("arena: munmap: %w", err)
	}
	return nil
}
