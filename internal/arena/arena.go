// Package arena implements the WFSNAP02 label-snapshot format: an
// mmap-able arena of encoded labels that a process opens in constant
// time and queries without decoding or copying anything.
//
// The v1 snapshot (internal/wal) is a varint-packed stream — reading
// it means one heap allocation per label and a map insert per label,
// so restoring a gigabyte session costs seconds before the first
// query. The arena format instead lays the file out so the *file
// itself* is the data structure:
//
//	[0:8)    magic "WFSNAP02" (ASCII)
//	[8:16)   uint64 LE  events      — WAL records covered by this snapshot
//	[16:24)  uint64 LE  walBytes    — byte offset of the end of the covered
//	                                  prefix in the session's events.wal
//	[24:32)  uint64 LE  count       — number of label entries
//	[32:40)  uint64 LE  labelBytes  — total label-region size in bytes
//	[40:44)  uint32 LE  labelCRC    — CRC-32 (IEEE) of the label region
//	[44:48)  uint32 LE  indexCRC    — CRC-32 (IEEE) of header[8:40) ++ index
//	[48:48+16·count)    index       — count entries, sorted by vertex id:
//	                                    uint32 LE vertex
//	                                    uint32 LE length
//	                                    uint64 LE offset (into the label region)
//	[.. +labelBytes)    label bytes — each label's encoding, contiguous,
//	                                  in index order
//
// The index is fixed-width and sorted, so a vertex is found by binary
// search straight over the mapped bytes — and because run vertices are
// assigned densely, the common case degenerates to a single O(1)
// offset computation. Labels are write-once (Section 2.4 of the
// paper), which is what makes serving query results as sub-slices of
// the mapped file sound: the bytes can never change underneath a
// reader, by the same ownership contract internal/store already
// relies on for its heap labels.
//
// On linux the file is mapped with mmap(MAP_SHARED, PROT_READ); other
// platforms fall back to reading the file into memory (same API, no
// zero-copy restore). The index CRC is verified at Open — it is a few
// hundred KB even for millions of labels — while the label-region CRC
// is verified by Verify on demand, so opening a multi-gigabyte arena
// does not fault in every page up front.
package arena

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"

	"wfreach/internal/graph"
	"wfreach/internal/integrity"
)

// Magic identifies an arena snapshot file (format version 2 of the
// labels.snap lineage started by internal/wal's WFSNAP01).
const Magic = "WFSNAP02"

// MagicV3 identifies the integrity-stamped format: the v2 layout with
// 64 extra header bytes committing to the label extents (a Merkle
// root, see internal/integrity) and to the covered WAL prefix (the
// frame hash-chain head at the watermark):
//
//	[0:8)     magic "WFSNAP03" (ASCII)
//	[8:44)    events, walBytes, count, labelBytes, labelCRC — as v2
//	[44:76)   merkleRoot — Merkle root over the label extents, in
//	          index order (leaf = SHA-256(0x00 || vertex || label))
//	[76:108)  chainHead  — WAL hash-chain head at record `events`
//	[108:112) uint32 LE indexCRC — CRC-32 (IEEE) of header[8:108) ++ index
//	then index and label region exactly as v2.
//
// The index CRC covers the integrity fields, so a flipped header byte
// is caught structurally at Open; a *consistently* rewritten header is
// caught by cross-checking merkleRoot against the labels and chainHead
// against the WAL, which is what restore and wfverify do.
const MagicV3 = "WFSNAP03"

const (
	headerSize   = 48
	headerSizeV3 = 112
	entrySize    = 16
)

// maxCount caps the entry count Open accepts, so a corrupt header
// cannot demand a multi-exabyte index before validation catches it.
// 1<<31 entries is far beyond any session (vertex ids are int32).
const maxCount = 1 << 31

// ErrCorrupt reports an arena file whose structure or checksum is
// invalid.
var ErrCorrupt = errors.New("arena: corrupt snapshot")

// ErrVersion reports a snapshot file in a different format version
// (e.g. a v1 "WFSNAP01" file). Callers fall back to the v1 reader.
var ErrVersion = errors.New("arena: snapshot format version not supported")

// Entry is one vertex → encoded-label pair handed to Write. Enc is
// aliased, never copied: the writer streams the bytes out directly.
type Entry struct {
	V   graph.VertexID
	Enc []byte
}

// Meta is the snapshot watermark written into the header.
type Meta struct {
	// Events is the number of WAL records the snapshot covers (each
	// record labels exactly one vertex).
	Events int64
	// WALBytes is the byte offset of the end of the covered prefix in
	// the session's WAL — where a restore resumes scanning.
	WALBytes int64
	// ChainHead is the WAL frame hash-chain head at record Events —
	// the anchor that ties the snapshot to the exact log prefix it
	// covers. Meaningful only when HasChain is set.
	ChainHead integrity.Head
	// HasChain selects the WFSNAP03 format; without it Write emits
	// WFSNAP02 bytes unchanged and the snapshot carries no integrity
	// metadata.
	HasChain bool
}

// Arena is an open snapshot: the raw file bytes (mapped on linux,
// read into memory elsewhere) plus the parsed header. All methods are
// safe for concurrent use; the underlying bytes are immutable.
type Arena struct {
	data   []byte // the whole file
	index  []byte // aliases data
	labels []byte // aliases data
	meta   Meta
	count  int
	mapped bool

	// merkleRoot is the header's label-extent Merkle root (v3 only;
	// meaningful when meta.HasChain is set, like meta.ChainHead).
	merkleRoot integrity.Head

	// dense is set when the vertex ids are exactly [minV, minV+count),
	// which run vertices nearly always are — lookups then skip the
	// binary search.
	dense bool
	minV  graph.VertexID

	// buckets accelerates sparse lookups: buckets[b] is the first index
	// entry whose vertex is >= minV + b<<bucketShift, so Get narrows to
	// a couple of entries in O(1) instead of a full binary search. Built
	// in one pass at Open; nil for dense or empty arenas.
	buckets     []int32
	bucketShift uint
}

// Open opens the arena snapshot at path, mapping it on linux. The
// header and index are validated (magic, sizes, index CRC, sorted
// contiguous extents); the label region's CRC is left to Verify. A
// v1-format file is reported as ErrVersion, damage as ErrCorrupt.
func Open(path string) (*Arena, error) {
	data, mapped, err := openFile(path)
	if err != nil {
		return nil, err
	}
	a, err := parse(data, mapped)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return a, nil
}

// parse validates the header and index of a raw arena image.
func parse(data []byte, mapped bool) (*Arena, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	hdrSize := headerSize
	v3 := false
	switch string(data[:8]) {
	case Magic:
	case MagicV3:
		hdrSize, v3 = headerSizeV3, true
		if len(data) < hdrSize {
			return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte v3 header", ErrCorrupt, len(data), hdrSize)
		}
	default:
		if string(data[:6]) == Magic[:6] { // a WFSNAP file of another version
			return nil, fmt.Errorf("%w: magic %q", ErrVersion, data[:8])
		}
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	events := binary.LittleEndian.Uint64(data[8:16])
	walBytes := binary.LittleEndian.Uint64(data[16:24])
	count := binary.LittleEndian.Uint64(data[24:32])
	labelBytes := binary.LittleEndian.Uint64(data[32:40])
	indexCRC := binary.LittleEndian.Uint32(data[hdrSize-4 : hdrSize])
	if events > 1<<62 || walBytes > 1<<62 || count > maxCount {
		return nil, fmt.Errorf("%w: implausible header (events=%d walBytes=%d count=%d)", ErrCorrupt, events, walBytes, count)
	}
	want := uint64(hdrSize) + count*entrySize + labelBytes
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("%w: file is %d bytes, header describes %d", ErrCorrupt, len(data), want)
	}
	index := data[uint64(hdrSize) : uint64(hdrSize)+count*entrySize]
	labels := data[uint64(hdrSize)+count*entrySize:]

	h := crc32.NewIEEE()
	h.Write(data[8 : hdrSize-4])
	h.Write(index)
	if h.Sum32() != indexCRC {
		return nil, fmt.Errorf("%w: index checksum mismatch", ErrCorrupt)
	}

	// Entries must be strictly ascending by vertex with contiguous
	// extents: offset i == offset i-1 + length i-1, summing exactly to
	// labelBytes. That one invariant rules out overlaps, gaps and
	// out-of-bounds slices in a single pass.
	a := &Arena{
		data:   data,
		index:  index,
		labels: labels,
		meta:   Meta{Events: int64(events), WALBytes: int64(walBytes), HasChain: v3},
		count:  int(count),
		mapped: mapped,
	}
	if v3 {
		copy(a.merkleRoot[:], data[44:76])
		copy(a.meta.ChainHead[:], data[76:108])
	}
	var next uint64
	prevV := int64(-1)
	for i := 0; i < a.count; i++ {
		e := index[i*entrySize:]
		v := binary.LittleEndian.Uint32(e[0:4])
		length := binary.LittleEndian.Uint32(e[4:8])
		offset := binary.LittleEndian.Uint64(e[8:16])
		if int64(v) <= prevV || int64(v) > int64(graph.VertexID(1<<31-1)) {
			return nil, fmt.Errorf("%w: index not strictly ascending at entry %d", ErrCorrupt, i)
		}
		if offset != next {
			return nil, fmt.Errorf("%w: entry %d extent [%d,+%d) is not contiguous (expected offset %d)", ErrCorrupt, i, offset, length, next)
		}
		next = offset + uint64(length)
		if next > labelBytes {
			return nil, fmt.Errorf("%w: entry %d extent [%d,+%d) exceeds label region of %d bytes", ErrCorrupt, i, offset, length, labelBytes)
		}
		prevV = int64(v)
	}
	if next != labelBytes {
		return nil, fmt.Errorf("%w: label region is %d bytes but extents cover %d", ErrCorrupt, labelBytes, next)
	}
	if a.count > 0 {
		a.minV = graph.VertexID(binary.LittleEndian.Uint32(index[0:4]))
		maxV := graph.VertexID(binary.LittleEndian.Uint32(index[(a.count-1)*entrySize:]))
		a.dense = int64(maxV)-int64(a.minV)+1 == int64(a.count)
		if !a.dense {
			a.buildBuckets(maxV)
		}
	}
	return a, nil
}

// buildBuckets constructs the sparse-lookup sidecar: the id span is
// divided into ~count ranges, and buckets[b] records the first index
// entry falling in range b. One O(count) pass, ≤ 4·count bytes of heap,
// and lookups touch only the handful of entries sharing a range.
func (a *Arena) buildBuckets(maxV graph.VertexID) {
	span := uint64(maxV-a.minV) + 1
	for span>>a.bucketShift > uint64(a.count) {
		a.bucketShift++
	}
	nb := int(uint64(maxV-a.minV)>>a.bucketShift) + 1
	a.buckets = make([]int32, nb+1)
	b := 0
	for i := 0; i < a.count; i++ {
		v := graph.VertexID(binary.LittleEndian.Uint32(a.index[i*entrySize:]))
		for hi := int(uint64(v-a.minV)>>a.bucketShift) + 1; b < hi; b++ {
			a.buckets[b] = int32(i)
		}
	}
	for ; b <= nb; b++ {
		a.buckets[b] = int32(a.count)
	}
}

// Meta returns the snapshot watermark.
func (a *Arena) Meta() Meta { return a.meta }

// Events returns the number of WAL records the snapshot covers.
func (a *Arena) Events() int64 { return a.meta.Events }

// WALBytes returns the WAL byte offset of the end of the covered
// prefix.
func (a *Arena) WALBytes() int64 { return a.meta.WALBytes }

// Count returns the number of labels in the arena.
func (a *Arena) Count() int { return a.count }

// LabelBytes returns the total size of the label region in bytes.
func (a *Arena) LabelBytes() int64 { return int64(len(a.labels)) }

// Mapped reports whether the arena is served from a memory mapping
// (true on linux) rather than a heap copy of the file.
func (a *Arena) Mapped() bool { return a.mapped }

// entry decodes index entry i.
func (a *Arena) entry(i int) (v graph.VertexID, enc []byte) {
	e := a.index[i*entrySize:]
	length := binary.LittleEndian.Uint32(e[4:8])
	offset := binary.LittleEndian.Uint64(e[8:16])
	return graph.VertexID(binary.LittleEndian.Uint32(e[0:4])), a.labels[offset : offset+uint64(length) : offset+uint64(length)]
}

// EntryAt returns the i-th entry in vertex order. The returned bytes
// alias the arena and must be treated as immutable.
func (a *Arena) EntryAt(i int) (graph.VertexID, []byte) { return a.entry(i) }

// Get returns the encoded label of v, aliasing the arena's bytes —
// zero copies, zero allocations. Dense vertex ranges resolve in O(1);
// sparse ones narrow to one bucket (a couple of entries on average)
// via the sidecar built at Open, then scan it.
func (a *Arena) Get(v graph.VertexID) ([]byte, bool) {
	if a.count == 0 || v < a.minV {
		return nil, false
	}
	if a.dense {
		i := int(v - a.minV)
		if i >= a.count {
			return nil, false
		}
		_, enc := a.entry(i)
		return enc, true
	}
	b := int(uint64(v-a.minV) >> a.bucketShift)
	if b >= len(a.buckets)-1 {
		return nil, false
	}
	for i, hi := int(a.buckets[b]), int(a.buckets[b+1]); i < hi; i++ {
		got := graph.VertexID(binary.LittleEndian.Uint32(a.index[i*entrySize:]))
		if got == v {
			_, enc := a.entry(i)
			return enc, true
		}
		if got > v {
			break
		}
	}
	return nil, false
}

// Range calls fn for every entry in ascending vertex order until fn
// returns false. The label bytes alias the arena.
func (a *Arena) Range(fn func(v graph.VertexID, enc []byte) bool) {
	for i := 0; i < a.count; i++ {
		v, enc := a.entry(i)
		if !fn(v, enc) {
			return
		}
	}
}

// Verify checks the label region against the header's CRC — the full
// integrity pass Open deliberately skips so that restore stays O(index).
// It faults in every page of the label region.
func (a *Arena) Verify() error {
	if crc32.ChecksumIEEE(a.labels) != binary.LittleEndian.Uint32(a.data[40:44]) {
		return fmt.Errorf("%w: label region checksum mismatch", ErrCorrupt)
	}
	return nil
}

// Integrity returns the snapshot's integrity anchors — the Merkle root
// over the label extents and the WAL chain head at the watermark. ok
// is false for v2 snapshots, which carry neither.
func (a *Arena) Integrity() (merkleRoot, chainHead integrity.Head, ok bool) {
	return a.merkleRoot, a.meta.ChainHead, a.meta.HasChain
}

// VerifyMerkle recomputes the Merkle root over the label extents and
// checks it against the header. Unlike the label-region CRC (Verify),
// the root also binds each extent to its vertex id and position, and
// it is the value the integrity API exposes to external anchors — a
// snapshot whose labels were rewritten CRC-consistently still fails
// here unless the header (and therefore the anchored root) was
// rewritten too. A v2 snapshot has no root and trivially passes.
// Like Verify, it faults in every page of the label region.
func (a *Arena) VerifyMerkle() error {
	if !a.meta.HasChain {
		return nil
	}
	m := integrity.NewMerkle()
	for i := 0; i < a.count; i++ {
		v, enc := a.entry(i)
		m.Add(m.LabelLeaf(uint32(v), enc))
	}
	if m.Root() != a.merkleRoot {
		return fmt.Errorf("%w: label Merkle root mismatch", ErrCorrupt)
	}
	return nil
}

// Close releases the mapping. It must not be called while any caller
// can still hold slices into the arena — a store serving an arena
// keeps it for the store's lifetime and never closes it.
func (a *Arena) Close() error {
	if !a.mapped {
		a.data, a.index, a.labels = nil, nil, nil
		return nil
	}
	data := a.data
	a.data, a.index, a.labels = nil, nil, nil
	a.mapped = false
	return unmapFile(data)
}

// Write atomically replaces the arena snapshot at path: entries are
// sorted by vertex (in place — the slice is scratch owned by the
// caller, its Enc bytes are only read), streamed through a buffered
// writer, synced, and renamed into place, like the v1 writer. Nothing
// is re-encoded and no label byte is copied: snapshotting a session
// costs one pass over the entries plus the file write itself.
//
// With meta.HasChain set the WFSNAP03 format is written: the Merkle
// root over the entries is computed during the same pass, stamped into
// the header next to meta.ChainHead, and returned so the caller can
// expose it without reopening the file. Without it, the emitted bytes
// are WFSNAP02, identical to previous releases, and the returned root
// is zero.
func Write(path string, meta Meta, entries []Entry) (integrity.Head, error) {
	if meta.Events < 0 || meta.WALBytes < 0 {
		return integrity.Head{}, fmt.Errorf("arena: negative watermark (events=%d walBytes=%d)", meta.Events, meta.WALBytes)
	}
	slices.SortFunc(entries, func(a, b Entry) int {
		switch {
		case a.V < b.V:
			return -1
		case a.V > b.V:
			return 1
		default:
			return 0
		}
	})
	var labelBytes uint64
	labelCRC := crc32.NewIEEE()
	var merkle *integrity.Merkle
	if meta.HasChain {
		merkle = integrity.NewMerkle()
	}
	index := make([]byte, len(entries)*entrySize)
	for i, e := range entries {
		if i > 0 && e.V == entries[i-1].V {
			return integrity.Head{}, fmt.Errorf("arena: vertex %d duplicated", e.V)
		}
		if e.V < 0 {
			return integrity.Head{}, fmt.Errorf("arena: negative vertex id %d", e.V)
		}
		ix := index[i*entrySize:]
		binary.LittleEndian.PutUint32(ix[0:4], uint32(e.V))
		binary.LittleEndian.PutUint32(ix[4:8], uint32(len(e.Enc)))
		binary.LittleEndian.PutUint64(ix[8:16], labelBytes)
		labelBytes += uint64(len(e.Enc))
		labelCRC.Write(e.Enc)
		if merkle != nil {
			merkle.Add(merkle.LabelLeaf(uint32(e.V), e.Enc))
		}
	}

	var root integrity.Head
	hdrSize := headerSize
	if meta.HasChain {
		hdrSize = headerSizeV3
		root = merkle.Root()
	}
	hdr := make([]byte, hdrSize)
	if meta.HasChain {
		copy(hdr[:8], MagicV3)
	} else {
		copy(hdr[:8], Magic)
	}
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(meta.Events))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(meta.WALBytes))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(len(entries)))
	binary.LittleEndian.PutUint64(hdr[32:40], labelBytes)
	binary.LittleEndian.PutUint32(hdr[40:44], labelCRC.Sum32())
	if meta.HasChain {
		copy(hdr[44:76], root[:])
		copy(hdr[76:108], meta.ChainHead[:])
	}
	indexCRC := crc32.NewIEEE()
	indexCRC.Write(hdr[8 : hdrSize-4])
	indexCRC.Write(index)
	binary.LittleEndian.PutUint32(hdr[hdrSize-4:], indexCRC.Sum32())

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return integrity.Head{}, fmt.Errorf("arena: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, err = tmp.Write(hdr)
	if err == nil {
		_, err = tmp.Write(index)
	}
	if err == nil {
		// The label region is the bulk of the file; write it through a
		// modest buffer so small labels do not each pay a syscall.
		buf := make([]byte, 0, 1<<16)
		for _, e := range entries {
			if len(buf)+len(e.Enc) > cap(buf) && len(buf) > 0 {
				if _, err = tmp.Write(buf); err != nil {
					break
				}
				buf = buf[:0]
			}
			if len(e.Enc) >= cap(buf) {
				if _, err = tmp.Write(e.Enc); err != nil {
					break
				}
				continue
			}
			buf = append(buf, e.Enc...)
		}
		if err == nil && len(buf) > 0 {
			_, err = tmp.Write(buf)
		}
	}
	if err == nil {
		err = tmp.Sync()
	}
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		return integrity.Head{}, fmt.Errorf("arena: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return integrity.Head{}, fmt.Errorf("arena: %w", err)
	}
	return root, nil
}
