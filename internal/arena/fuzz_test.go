package arena

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"wfreach/internal/graph"
)

// FuzzArenaOpen throws arbitrary bytes at the v2 parser. The property
// under test: Open either rejects the input or returns an arena whose
// every entry is a safe, in-bounds slice — no panics, no entry that
// escapes the label region, no unsorted index. Seeds cover the
// interesting neighborhoods: a valid file, truncations, header and
// index mutations.
func FuzzArenaOpen(f *testing.F) {
	path := filepath.Join(f.TempDir(), "seed.snap")
	entries := []Entry{
		{V: 0, Enc: []byte("alpha")},
		{V: 1, Enc: []byte("b")},
		{V: 5, Enc: []byte("gamma-gamma")},
	}
	if _, err := Write(path, Meta{Events: 3, WALBytes: 99}, entries); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])         // truncated label region
	f.Add(valid[:headerSize+entrySize]) // truncated index
	f.Add(valid[:12])                   // truncated header
	f.Add([]byte("WFSNAP01v1 body...")) // v1 magic
	f.Add([]byte("WFSNAP02"))           // magic only
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	mutated := bytes.Clone(valid)
	mutated[headerSize+8] ^= 0x01 // entry 0 offset
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := parse(bytes.Clone(data), false)
		if err != nil {
			return
		}
		// Accepted: every access must stay in bounds and ordered.
		prev := graph.VertexID(-1)
		total := 0
		a.Range(func(v graph.VertexID, enc []byte) bool {
			if v <= prev {
				t.Fatalf("unsorted index accepted: %d after %d", v, prev)
			}
			prev = v
			total += len(enc)
			got, ok := a.Get(v)
			if !ok || !bytes.Equal(got, enc) {
				t.Fatalf("Get(%d) disagrees with Range", v)
			}
			return true
		})
		if int64(total) != a.LabelBytes() {
			t.Fatalf("extents cover %d bytes, label region is %d", total, a.LabelBytes())
		}
	})
}
