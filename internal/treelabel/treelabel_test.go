package treelabel_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/treelabel"
)

// randomTree builds a random tree of n nodes, returning all nodes in
// creation order (root first).
func randomTree(rng *rand.Rand, n int) []*parsetree.Node {
	root := parsetree.NewRoot(0, 1)
	nodes := []*parsetree.Node{root}
	for len(nodes) < n {
		parent := nodes[rng.Intn(len(nodes))]
		var child *parsetree.Node
		if parent.IsSpecial() || rng.Intn(2) == 0 {
			child = parent.AddInstance(0, 1, parent.NextIndex())
		} else {
			child = parent.AddSpecial(label.L, parent.NextIndex())
		}
		nodes = append(nodes, child)
	}
	return nodes
}

// isAncestor is the ground truth via parent pointers.
func isAncestor(a, b *parsetree.Node) bool {
	for n := b; n != nil; n = n.Parent {
		if n == a {
			return true
		}
	}
	return false
}

func TestIntervalMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		nodes := randomTree(rng, 10+rng.Intn(60))
		il := treelabel.NewIntervalLabeling(nodes[0])
		for _, a := range nodes {
			for _, b := range nodes {
				got, err := il.Ancestor(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := isAncestor(a, b); got != want {
					t.Fatalf("interval ancestor(%p,%p)=%v, want %v", a, b, got, want)
				}
			}
		}
	}
}

func TestPrefixMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nodes := randomTree(rng, 10+rng.Intn(60))
		pl := treelabel.NewPrefixLabeling(nodes[0])
		for _, n := range nodes[1:] {
			if err := pl.Extend(n); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range nodes {
			for _, b := range nodes {
				got, err := pl.Ancestor(a, b)
				if err != nil {
					t.Fatal(err)
				}
				if want := isAncestor(a, b); got != want {
					t.Fatalf("prefix ancestor=%v, want %v", got, want)
				}
			}
		}
	}
}

// TestPrefixLabelsAreDynamic: labels assigned early never change as
// the tree grows — the property interval labels lack (their intervals
// depend on the final subtree sizes).
func TestPrefixLabelsAreDynamic(t *testing.T) {
	root := parsetree.NewRoot(0, 1)
	pl := treelabel.NewPrefixLabeling(root)
	c1 := root.AddInstance(0, 1, root.NextIndex())
	if err := pl.Extend(c1); err != nil {
		t.Fatal(err)
	}
	early, _ := pl.Label(c1)
	snapshot := append(treelabel.Prefix(nil), early...)
	// Grow the tree substantially.
	rng := rand.New(rand.NewSource(3))
	nodes := []*parsetree.Node{root, c1}
	for i := 0; i < 50; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		child := parent.AddInstance(0, 1, parent.NextIndex())
		if err := pl.Extend(child); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, child)
	}
	late, _ := pl.Label(c1)
	if !snapshot.IsAncestorOf(late) || !late.IsAncestorOf(snapshot) {
		t.Fatal("early label changed as the tree grew")
	}
}

func TestPrefixErrors(t *testing.T) {
	root := parsetree.NewRoot(0, 1)
	pl := treelabel.NewPrefixLabeling(root)
	c := root.AddInstance(0, 1, root.NextIndex())
	grand := c.AddInstance(0, 1, c.NextIndex())
	// Grandchild before child: parent unlabeled.
	if err := pl.Extend(grand); err == nil {
		t.Fatal("extending under unlabeled parent accepted")
	}
	if err := pl.Extend(c); err != nil {
		t.Fatal(err)
	}
	if err := pl.Extend(c); err == nil {
		t.Fatal("double Extend accepted")
	}
	other := parsetree.NewRoot(0, 1)
	if _, err := pl.Ancestor(other, c); err == nil {
		t.Fatal("unlabeled node accepted in query")
	}
	if _, err := pl.Ancestor(c, other); err == nil {
		t.Fatal("unlabeled node accepted in query")
	}
}

func TestIntervalBits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nodes := randomTree(rng, 100)
	il := treelabel.NewIntervalLabeling(nodes[0])
	// 2·⌈log₂ 200⌉ = 16 bits.
	if got := il.Bits(); got != 16 {
		t.Fatalf("Bits = %d, want 16", got)
	}
	if _, ok := il.Label(nodes[3]); !ok {
		t.Fatal("node unlabeled")
	}
	if _, err := il.Ancestor(parsetree.NewRoot(0, 1), nodes[0]); err == nil {
		t.Fatal("foreign node accepted")
	}
	if _, err := il.Ancestor(nodes[0], parsetree.NewRoot(0, 1)); err == nil {
		t.Fatal("foreign node accepted")
	}
}
