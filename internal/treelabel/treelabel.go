// Package treelabel implements the two classic tree labeling schemes
// the paper builds on, as standalone components with ancestor queries:
//
//   - the interval-based scheme of Santoro & Khatib [22] — static,
//     2·log n bits, used by the SKL baseline (Section 7.4);
//   - the prefix-based (Dewey) scheme of Kaplan, Milo & Shabo [18] —
//     dynamic (supports appending children anywhere, labels never
//     change), the scheme DRL uses to label the explicit parse tree
//     (Section 5.2).
//
// Section 7.4 explains DRL's shorter labels through exactly this
// contrast: "the former [prefix] performs better on balanced trees
// with relatively high degrees and low depth", which is what explicit
// parse trees of large runs look like.
package treelabel

import (
	"fmt"

	"wfreach/internal/parsetree"
)

// Interval is a static interval label: Ancestor(a, b) iff a's interval
// contains b's.
type Interval struct {
	Begin, End int32
}

// Contains reports whether a is an ancestor of (or equal to) b.
func (a Interval) Contains(b Interval) bool {
	return a.Begin <= b.Begin && b.End <= a.End
}

// IntervalLabeling assigns interval labels to a whole tree (static: it
// must see the final tree).
type IntervalLabeling struct {
	labels map[*parsetree.Node]Interval
	n      int32
}

// NewIntervalLabeling labels the tree rooted at root by DFS.
func NewIntervalLabeling(root *parsetree.Node) *IntervalLabeling {
	il := &IntervalLabeling{labels: make(map[*parsetree.Node]Interval)}
	il.dfs(root)
	return il
}

func (il *IntervalLabeling) dfs(n *parsetree.Node) {
	begin := il.n
	il.n++
	for _, c := range n.Children {
		il.dfs(c)
	}
	il.labels[n] = Interval{Begin: begin, End: il.n}
	il.n++
}

// Label returns the interval of a node.
func (il *IntervalLabeling) Label(n *parsetree.Node) (Interval, bool) {
	l, ok := il.labels[n]
	return l, ok
}

// Ancestor reports whether a is an ancestor of (or equal to) b, from
// labels alone.
func (il *IntervalLabeling) Ancestor(a, b *parsetree.Node) (bool, error) {
	la, ok := il.labels[a]
	if !ok {
		return false, fmt.Errorf("treelabel: node not labeled")
	}
	lb, ok := il.labels[b]
	if !ok {
		return false, fmt.Errorf("treelabel: node not labeled")
	}
	return la.Contains(lb), nil
}

// Bits returns the label size in bits: two indexes of ⌈log₂ 2n⌉ each.
func (il *IntervalLabeling) Bits() int {
	b := 1
	for 1<<b < int(il.n) {
		b++
	}
	return 2 * b
}

// Prefix is a dynamic Dewey label: the child indexes from the root.
// Ancestor(a, b) iff a is a prefix of b. Labels are assigned when a
// node is created and never revised — new siblings extend the parent's
// child count without touching existing labels, which is what makes
// the scheme dynamic [18].
type Prefix []int32

// IsAncestorOf reports prefix containment (reflexive).
func (p Prefix) IsAncestorOf(q Prefix) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// PrefixLabeling labels a growing tree on the fly.
type PrefixLabeling struct {
	labels map[*parsetree.Node]Prefix
}

// NewPrefixLabeling starts a labeling with the given root.
func NewPrefixLabeling(root *parsetree.Node) *PrefixLabeling {
	pl := &PrefixLabeling{labels: make(map[*parsetree.Node]Prefix)}
	pl.labels[root] = Prefix{}
	return pl
}

// Extend labels a newly added child of an already-labeled parent. It
// must be called exactly once per node, in creation order.
func (pl *PrefixLabeling) Extend(child *parsetree.Node) error {
	if _, dup := pl.labels[child]; dup {
		return fmt.Errorf("treelabel: node labeled twice")
	}
	parent := child.Parent
	pp, ok := pl.labels[parent]
	if !ok {
		return fmt.Errorf("treelabel: parent not labeled")
	}
	l := make(Prefix, len(pp)+1)
	copy(l, pp)
	l[len(pp)] = child.Index
	pl.labels[child] = l
	return nil
}

// Label returns the prefix label of a node.
func (pl *PrefixLabeling) Label(n *parsetree.Node) (Prefix, bool) {
	l, ok := pl.labels[n]
	return l, ok
}

// Ancestor reports ancestry (reflexive) from labels alone.
func (pl *PrefixLabeling) Ancestor(a, b *parsetree.Node) (bool, error) {
	la, ok := pl.labels[a]
	if !ok {
		return false, fmt.Errorf("treelabel: node not labeled")
	}
	lb, ok := pl.labels[b]
	if !ok {
		return false, fmt.Errorf("treelabel: node not labeled")
	}
	return la.IsAncestorOf(lb), nil
}
