package parsetree

import (
	"fmt"
	"io"
	"strings"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// Dump renders the subtree as an indented outline, in the spirit of
// the paper's Figure 9, for debugging and teaching: instance nodes
// show their specification graph and materialized members; special
// nodes show their kind and child count.
//
//	N g0 [s0=0 L t0=17]
//	└ L #2 (slot 1)
//	  ├ N h1 copy 1 [s1=1 F t1=14]
//	  …
func (n *Node) Dump(w io.Writer, s *spec.Spec) {
	n.dump(w, s, 0)
}

func (n *Node) dump(w io.Writer, s *spec.Spec, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsSpecial() {
		fmt.Fprintf(w, "%s%s #%d (index %d)\n", indent, n.Kind, len(n.Children), n.Index)
	} else {
		gg := s.Graph(n.Graph)
		var members []string
		for v := 0; v < gg.G.NumVertices(); v++ {
			name := gg.G.Name(graph.VertexID(v))
			if r := n.RunOf[v]; r != graph.None {
				members = append(members, fmt.Sprintf("%s=%d", name, r))
			} else {
				members = append(members, name)
			}
		}
		fmt.Fprintf(w, "%sN %s (index %d) [%s]\n", indent, gg.Label, n.Index, strings.Join(members, " "))
	}
	for _, c := range n.Children {
		c.dump(w, s, depth+1)
	}
}

// DumpString renders Dump into a string.
func (n *Node) DumpString(s *spec.Spec) string {
	var b strings.Builder
	n.Dump(&b, s)
	return b.String()
}
