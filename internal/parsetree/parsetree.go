// Package parsetree implements the explicit parse tree of Section 4.2:
// the tree whose non-special nodes are instances of specification
// graphs created during a derivation and whose special L, F and R
// nodes group loop copies, fork copies and linear-recursion chains.
// For linear recursive grammars its depth is bounded by a constant
// depending only on the grammar (Lemma 4.1), which is what makes the
// dynamic labels logarithmic.
//
// The package provides the tree structure and its shape statistics
// (depth d_t, fanout θ_t, size n_t of Table 1); the labeling semantics
// live in internal/core.
package parsetree

import (
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/spec"
)

// Node is a node of the explicit parse tree. Non-special nodes
// (Kind == label.N) are annotated with an instance of a specification
// graph; special nodes (L, F, R) group their children.
type Node struct {
	Kind     label.NodeType
	Index    int32 // position under the parent: 0 for the root, 1-based for children
	Parent   *Node
	Children []*Node

	// Instance annotation, meaningful for non-special nodes.

	// Graph is the specification graph this node instantiates.
	Graph spec.GraphID
	// RunOf maps each spec vertex of Graph to its run vertex
	// (graph.None while not yet materialized).
	RunOf []graph.VertexID
	// SlotParent is the canonical parse-tree parent: the instance
	// whose composite vertex SlotVertex this instance (or its group)
	// expands. For the members of a recursion chain after the first,
	// SlotParent is the previous chain member and SlotVertex its
	// designated recursive vertex. Nil for the root.
	SlotParent *Node
	SlotVertex graph.VertexID

	// Groups maps a composite vertex of Graph to the node expanding it
	// (an L/F/R group node or a plain child instance).
	Groups map[graph.VertexID]*Node

	// Prefix is the label context of this node: for special nodes, the
	// node's own temporary label φ_g(x) (Algorithm 3); for instance
	// nodes, the prefix to which a member's final entry is appended.
	Prefix label.Label
}

// NewRoot creates the root instance annotated with the start graph.
func NewRoot(gid spec.GraphID, vertices int) *Node {
	return newInstance(gid, vertices)
}

func newInstance(gid spec.GraphID, vertices int) *Node {
	n := &Node{Kind: label.N, Graph: gid, Groups: make(map[graph.VertexID]*Node)}
	n.RunOf = make([]graph.VertexID, vertices)
	for i := range n.RunOf {
		n.RunOf[i] = graph.None
	}
	return n
}

// AddSpecial appends a new special child (L, F or R) to n with the
// given sibling index. Expansions of an instance's slots use the slot
// vertex as the index, making labels independent of the order in which
// sibling slots happen to expand; copies under L/F nodes and chain
// members under R nodes use their 1-based position.
func (n *Node) AddSpecial(kind label.NodeType, index int32) *Node {
	if kind == label.N {
		panic("parsetree: AddSpecial with N kind")
	}
	c := &Node{Kind: kind, Parent: n, Index: index}
	n.Children = append(n.Children, c)
	return c
}

// AddInstance appends a new instance child annotated with the given
// specification graph, with the given sibling index (see AddSpecial).
func (n *Node) AddInstance(gid spec.GraphID, vertices int, index int32) *Node {
	c := newInstance(gid, vertices)
	c.Parent = n
	c.Index = index
	n.Children = append(n.Children, c)
	return c
}

// NextIndex returns the 1-based position for the next ordered child
// (loop/fork copies and recursion-chain members).
func (n *Node) NextIndex() int32 { return int32(len(n.Children) + 1) }

// SlotIndex returns the static sibling index used for the expansion of
// a slot vertex: the slot's vertex id plus one (unique among an
// instance's children, and disjoint from the root's 0).
func SlotIndex(slot graph.VertexID) int32 { return int32(slot) + 1 }

// IsSpecial reports whether the node is an L, F or R node.
func (n *Node) IsSpecial() bool { return n.Kind != label.N }

// Root returns the tree root.
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the depth of the subtree rooted at n: the number of
// levels (a single node has depth 1, matching the d_t of Table 1 as a
// level count; Lemma 4.1 bounds edges-depth by 2|Σ\Δ|, i.e. levels by
// 2|Σ\Δ|+1).
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Size returns the number of nodes in the subtree (n_t of Table 1).
func (n *Node) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// MaxFanout returns the maximum out-degree in the subtree (θ_t).
func (n *Node) MaxFanout() int {
	max := len(n.Children)
	for _, c := range n.Children {
		if f := c.MaxFanout(); f > max {
			max = f
		}
	}
	return max
}

// Walk visits every node of the subtree in preorder.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}
