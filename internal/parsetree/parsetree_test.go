package parsetree_test

import (
	"bytes"
	"strings"
	"testing"

	"wfreach/internal/label"
	"wfreach/internal/parsetree"
	"wfreach/internal/spec"
)

func TestTreeConstruction(t *testing.T) {
	root := parsetree.NewRoot(0, 3)
	if root.Index != 0 || root.IsSpecial() || root.Parent != nil {
		t.Fatal("root malformed")
	}
	if len(root.RunOf) != 3 {
		t.Fatal("RunOf not sized")
	}
	for _, r := range root.RunOf {
		if r != -1 {
			t.Fatal("RunOf must start unmaterialized")
		}
	}
	l := root.AddSpecial(label.L, parsetree.SlotIndex(1))
	if l.Index != 2 || !l.IsSpecial() || l.Parent != root {
		t.Fatalf("special child malformed: index %d", l.Index)
	}
	c1 := l.AddInstance(1, 4, l.NextIndex())
	c2 := l.AddInstance(1, 4, l.NextIndex())
	if c1.Index != 1 || c2.Index != 2 {
		t.Fatal("copy indexes must be 1-based positions")
	}
	if c1.Root() != root || c2.Root() != root {
		t.Fatal("Root() broken")
	}
}

func TestAddSpecialRejectsN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSpecial(N) must panic")
		}
	}()
	parsetree.NewRoot(0, 1).AddSpecial(label.N, 1)
}

func TestShapeStatistics(t *testing.T) {
	root := parsetree.NewRoot(0, 2)
	l := root.AddSpecial(label.L, 1)
	for i := 0; i < 5; i++ {
		l.AddInstance(1, 2, l.NextIndex())
	}
	r := root.AddSpecial(label.R, 2)
	m := r.AddInstance(2, 2, r.NextIndex())
	m2 := r.AddInstance(3, 2, r.NextIndex())
	_ = m2
	m.AddInstance(4, 2, 1) // nested plain child under the chain member
	if got := root.Size(); got != 11 {
		t.Fatalf("Size = %d, want 11", got)
	}
	if got := root.Depth(); got != 4 {
		t.Fatalf("Depth = %d, want 4 (root, R, member, nested)", got)
	}
	if got := root.MaxFanout(); got != 5 {
		t.Fatalf("MaxFanout = %d, want 5", got)
	}
	count := 0
	root.Walk(func(*parsetree.Node) { count++ })
	if count != 11 {
		t.Fatalf("Walk visited %d", count)
	}
}

func TestSlotIndexDisjointFromRoot(t *testing.T) {
	// Slot indexes are ≥ 1, never colliding with the root's 0.
	if parsetree.SlotIndex(0) != 1 || parsetree.SlotIndex(7) != 8 {
		t.Fatal("SlotIndex off")
	}
}

func TestDumpRendering(t *testing.T) {
	// Build a small spec so Dump can resolve graph labels and names.
	s := wfspecsStub(t)
	root := parsetree.NewRoot(0, 3)
	root.RunOf[0] = 0
	l := root.AddSpecial(label.L, parsetree.SlotIndex(1))
	c := l.AddInstance(1, 3, l.NextIndex())
	c.RunOf[2] = 7
	out := root.DumpString(s)
	for _, want := range []string{"N g0", "L #1", "s0=0", "t1=7", "index 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	root.Dump(&buf, s)
	if buf.String() != out {
		t.Fatal("Dump and DumpString disagree")
	}
}

// wfspecsStub builds a two-graph spec without importing wfspecs (which
// would be an import cycle through graph helpers elsewhere).
func wfspecsStub(t *testing.T) *spec.Spec {
	t.Helper()
	return spec.NewBuilder().
		Loop("L").
		Start("g0", spec.G([]string{"s0", "L", "t0"},
			[2]string{"s0", "L"}, [2]string{"L", "t0"})).
		Implement("L", "h1", spec.G([]string{"s1", "w", "t1"},
			[2]string{"s1", "w"}, [2]string{"w", "t1"})).
		MustBuild()
}
