package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/obs"
	"wfreach/internal/service"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
	"wfreach/internal/wfxml"
)

// Options configures a Controller.
type Options struct {
	// ProbeInterval is how often peers are probed for liveness and map
	// version. Zero selects 2s.
	ProbeInterval time.Duration
	// HTTPTimeout bounds each unary peer call (map fetch, stats, spec,
	// release). Zero selects 10s. Tail streams and forwarded moves are
	// bounded by the request context instead.
	HTTPTimeout time.Duration
	// BatchSize caps how many tailed events a move applies per ingest
	// call. Zero selects 256.
	BatchSize int
	// Logf, when set, receives human-readable progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.HTTPTimeout <= 0 {
		o.HTTPTimeout = 10 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
}

// peerState is the prober's record of one other node.
type peerState struct {
	node       api.ClusterNode
	up         bool
	mapVersion int64
	lastErr    string
	lastSeen   time.Time // zero: never answered
}

// Controller runs one node's share of the cluster: it gates the HTTP
// surface by placement (service.ClusterHooks), serves the /v1/cluster
// control plane, probes the peers, and executes session moves by
// tailing the owner's WAL — the same replay a follower runs, driven to
// a sealed final sequence instead of forever. A moved session persists
// through the destination's own registry, so its snapshots land in the
// arena format (WFSNAP02) and a node restart re-adopts every session
// it hosts — moved or native — through the shared arena restore path:
// snapshotted labels are mapped zero-copy and only the WAL tail past
// the snapshot watermark is replayed.
//
// The controller deliberately talks raw HTTP + api types to its peers
// rather than the client SDK: the SDK's cluster client imports this
// package for placement, so the dependency must point one way.
type Controller struct {
	self  api.ClusterNode
	state *State
	reg   *service.Registry
	opts  Options
	hc    *http.Client

	// Move-phase and rejection instruments, re-registered against the
	// registry's obs families (idempotent — shared with the series the
	// service pre-creates so the scrape carries them from node start).
	moves      *obs.CounterVec
	rejections *obs.CounterVec

	mu     sync.Mutex
	peers  map[string]*peerState
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// moveMu serializes moves arriving at this node; concurrent moves
	// of different sessions would be fine, but one at a time keeps the
	// seal/override interleavings trivial to reason about.
	moveMu sync.Mutex
}

// New builds the controller for node self over the map and installs
// its hooks on the registry — from that point the registry's HTTP
// surface is placement-gated and the /v1/cluster routes answer. The
// prober is idle until Start.
func New(self string, m api.ClusterMap, reg *service.Registry, opts Options) (*Controller, error) {
	opts.fill()
	if err := ValidateMap(m); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	st, err := NewState(m)
	if err != nil {
		return nil, err
	}
	me, ok := m.Node(self)
	if !ok {
		return nil, fmt.Errorf("cluster: this node %q is not in the cluster map", self)
	}
	c := &Controller{
		self:  me,
		state: st,
		reg:   reg,
		opts:  opts,
		hc:    &http.Client{},
		peers: make(map[string]*peerState),

		moves:      reg.Obs().CounterVec("wf_cluster_moves_total", "Cluster session-move phase transitions.", "phase"),
		rejections: reg.Obs().CounterVec("wf_cluster_rejections_total", "Placement rejections served.", "code"),
	}
	for _, n := range m.Nodes {
		if n.Name != self {
			c.peers[n.Name] = &peerState{node: n}
		}
	}
	reg.SetClusterHooks(service.ClusterHooks{
		Route:   c.Route,
		Map:     c.Map,
		Health:  c.Health,
		Move:    c.Move,
		Release: c.Release,
		Forget:  c.state.DropOverride,
	})
	return c, nil
}

// Self returns this node's map entry.
func (c *Controller) Self() api.ClusterNode { return c.self }

// State returns the controller's live map state.
func (c *Controller) State() *State { return c.state }

func (c *Controller) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Start launches the peer prober in the background.
func (c *Controller) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.probeLoop(ctx)
	}()
}

// Close stops the prober. The hooks stay installed; the node keeps
// routing with the map it has.
func (c *Controller) Close() {
	c.mu.Lock()
	cancel := c.cancel
	c.cancel = nil
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	c.wg.Wait()
}

// Route is the placement gate (service.ClusterHooks.Route): nil when
// this node serves the session, a typed rejection naming the owner
// otherwise. Reads against a retained local copy of a moved session
// are served — stale, exactly like a follower's. Writes to a session
// moved here whose drain has not finished are rejected too: accepting
// one would interleave stray events with the sealed-but-undrained
// suffix and silently fork the copy from the releasing node's log.
func (c *Controller) Route(session string, write bool) error {
	owner := c.state.Place(session)
	if owner.Name == c.self.Name {
		if write {
			return c.undrained(session)
		}
		return nil
	}
	if _, ok := c.reg.Get(session); ok {
		if !write {
			return nil
		}
		c.rejections.With("read_only").Inc()
		return api.Errorf(api.CodeReadOnly, "session %q moved to node %s", session, owner.Name).
			WithDetail("%s", owner.URL)
	}
	c.rejections.With("wrong_node").Inc()
	return api.Errorf(api.CodeWrongNode, "session %q is owned by node %s", session, owner.Name).
		WithDetail("%s", owner.URL)
}

// undrained reports why a session the map places here cannot take
// writes yet: its move recorded a sealed final sequence the local copy
// has not applied through (the override gossips ahead of the drain).
// The rejection names this node so a routing client simply retries
// here with backoff; the prober's resume (or a re-POSTed move) closes
// the gap within a probe interval. nil once drained — including every
// session that never moved, where the single override lookup is the
// only cost.
func (c *Controller) undrained(session string) error {
	ov, ok := c.state.OverrideFor(session)
	if !ok || ov.From == "" || ov.From == c.self.Name || ov.FinalSeq <= 0 {
		return nil
	}
	if s, have := c.reg.Get(session); have && s.Vertices() >= ov.FinalSeq {
		return nil
	}
	c.rejections.With("read_only").Inc()
	return api.Errorf(api.CodeReadOnly, "session %q is still draining its move from node %s; retry shortly", session, ov.From).
		WithDetail("%s", c.self.URL)
}

// Map snapshots the node's cluster map.
func (c *Controller) Map() api.ClusterMap { return c.state.Map() }

// Health builds the node's cluster health: role and WAL sequences from
// the replication status, peers from the prober.
func (c *Controller) Health() api.ClusterHealth {
	rs := c.reg.ReplicationStatus()
	return api.ClusterHealth{
		Node:       c.self.Name,
		MapVersion: c.state.Version(),
		Role:       rs.Role,
		Sessions:   rs.Sessions,
		Peers:      c.peerView(),
		Metrics:    c.reg.MetricsSnapshot(),
	}
}

// peerView snapshots the prober's peer records, sorted by name.
func (c *Controller) peerView() []api.ClusterPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]api.ClusterPeer, 0, len(c.peers))
	for _, p := range c.peers {
		age := int64(-1)
		if !p.lastSeen.IsZero() {
			age = time.Since(p.lastSeen).Milliseconds()
		}
		out = append(out, api.ClusterPeer{
			Name: p.node.Name, URL: p.node.URL,
			Up: p.up, MapVersion: p.mapVersion, Error: p.lastErr, AgeMS: age,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// probeLoop polls every peer's map endpoint: liveness for the health
// report, and map merging so overrides installed by moves elsewhere
// reach this node without waiting for a misroute.
func (c *Controller) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		c.probeOnce(ctx)
		c.resumeIncomplete(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// resumeIncomplete finishes moves to this node that were interrupted
// after the owner's release — a crashed target, a lost caller: any
// session the map places here whose copy has not drained to the
// override's sealed final sequence is completed through the same path
// a re-POSTed move takes, so the cluster self-heals instead of
// waiting for an operator retry. Skipped entirely while a move is in
// flight (TryLock): the running move either is the drain in question
// or will leave a drained copy behind.
func (c *Controller) resumeIncomplete(ctx context.Context) {
	if !c.moveMu.TryLock() {
		return
	}
	defer c.moveMu.Unlock()
	for sess, ov := range c.state.Map().Overrides {
		if ov.Deleted || ov.Node != c.self.Name || ov.From == "" || ov.From == c.self.Name || ov.FinalSeq <= 0 {
			continue
		}
		if s, ok := c.reg.Get(sess); ok && s.Vertices() >= ov.FinalSeq {
			continue
		}
		c.logf("cluster: session %q has an interrupted move; resuming its drain", sess)
		if _, err := c.completeLocal(ctx, sess); err != nil {
			c.logf("cluster: resume move of %q: %v", sess, err)
		}
	}
}

func (c *Controller) probeOnce(ctx context.Context) {
	c.mu.Lock()
	peers := make([]*peerState, 0, len(c.peers))
	for _, p := range c.peers {
		peers = append(peers, p)
	}
	c.mu.Unlock()
	for _, p := range peers {
		var m api.ClusterMap
		err := c.getJSON(ctx, p.node.URL, "/v1/cluster/map", &m)
		c.mu.Lock()
		if err != nil {
			p.up, p.lastErr = false, err.Error()
			c.mu.Unlock()
			continue
		}
		p.up, p.lastErr, p.mapVersion, p.lastSeen = true, "", m.Version, time.Now()
		c.mu.Unlock()
		if changed, err := c.state.Merge(m); err != nil {
			c.logf("cluster: merge map from %s: %v", p.node.Name, err)
		} else if changed {
			c.logf("cluster: adopted map v%d from %s", c.state.Version(), p.node.Name)
		}
	}
}

// Move moves req.Session to req.Target. POSTed to any node: the target
// executes the receive protocol, every other node forwards. Moving a
// session to the node that already owns it is the identity move and
// succeeds immediately.
func (c *Controller) Move(ctx context.Context, req api.MoveRequest) (api.MoveResponse, error) {
	if req.Session == "" {
		return api.MoveResponse{}, api.Errorf(api.CodeBadRequest, "move wants a session name")
	}
	target, ok := c.state.Map().Node(req.Target)
	if !ok {
		return api.MoveResponse{}, api.Errorf(api.CodeBadRequest, "unknown target node %q", req.Target)
	}
	if target.Name != c.self.Name {
		var resp api.MoveResponse
		if err := c.postJSON(ctx, target.URL, "/v1/cluster/move", req, &resp, false); err != nil {
			return api.MoveResponse{}, err
		}
		if _, merr := c.state.Merge(resp.Map); merr != nil {
			c.logf("cluster: merge map after forwarded move: %v", merr)
		}
		return resp, nil
	}
	c.moveMu.Lock()
	defer c.moveMu.Unlock()
	return c.receiveMove(ctx, req.Session)
}

// receiveMove runs the target side of a move of session to this node:
//
//  1. adopt — rebuild the session locally from the owner's spec and
//     labeling config (or resume a copy left by an earlier attempt,
//     identity-checked);
//  2. catch up — tail the owner's WAL wait=false until a round ships
//     nothing new;
//  3. release — ask the owner to seal the session and install the
//     override; the owner answers with the final sealed sequence;
//  4. drain — tail until the local copy has applied through it;
//  5. adopt the owner's map (which now carries the override) and serve.
//
// Ordering is what makes the move lossless: the seal (under the
// owner's ingest lock) fixes the final sequence after which no write
// can land on the owner, and this node only starts accepting writes —
// step 5 flips Route — once it has applied everything up to it.
func (c *Controller) receiveMove(ctx context.Context, session string) (api.MoveResponse, error) {
	owner := c.state.Place(session)
	if owner.Name == c.self.Name {
		return c.completeLocal(ctx, session)
	}
	c.moves.With("started").Inc()
	c.logf("cluster: moving session %q from %s to %s", session, owner.Name, c.self.Name)

	var pst api.SessionStats
	if err := c.getJSON(ctx, owner.URL, "/v1/sessions/"+url.PathEscape(session), &pst); err != nil {
		return api.MoveResponse{}, fmt.Errorf("cluster: fetch session %q from %s: %w", session, owner.Name, err)
	}
	s, err := c.adopt(ctx, owner, pst)
	if err != nil {
		return api.MoveResponse{}, err
	}

	// Catch up while the owner is still ingesting; each round drains the
	// currently committed history. When a round ships nothing we are as
	// close as tailing gets — time to seal.
	for {
		n, err := c.tailRound(ctx, s, owner.URL, session)
		if err != nil {
			return api.MoveResponse{}, fmt.Errorf("cluster: catch up %q from %s: %w", session, owner.Name, err)
		}
		if n == 0 {
			break
		}
	}

	var rel api.ReleaseResponse
	relReq := api.ReleaseRequest{Session: session, Node: c.self.Name, URL: c.self.URL}
	if err := c.postJSON(ctx, owner.URL, "/v1/cluster/release", relReq, &rel, true); err != nil {
		return api.MoveResponse{}, fmt.Errorf("cluster: release %q on %s: %w", session, owner.Name, err)
	}

	if err := c.drain(ctx, s, owner.URL, session, rel.FinalSeq); err != nil {
		return api.MoveResponse{}, err
	}
	if err := c.verifyMoveChain(s, session, rel.FinalSeq, rel.ChainHead); err != nil {
		return api.MoveResponse{}, err
	}

	// Everything is here; adopting the owner's map (override included)
	// flips Route and this node starts serving the session.
	if _, err := c.state.Merge(rel.Map); err != nil {
		return api.MoveResponse{}, fmt.Errorf("cluster: adopt released map: %w", err)
	}
	c.moves.With("completed").Inc()
	c.logf("cluster: session %q now served here (%d events, map v%d)", session, s.Vertices(), c.state.Version())
	return api.MoveResponse{Session: session, From: owner.Name, To: c.self.Name,
		Events: s.Vertices(), Map: c.state.Map()}, nil
}

// completeLocal answers a move whose target the map already places
// here: a re-POSTed move, a hash-placed session "moved" home — or a
// move interrupted between the owner's release and the end of the
// drain. The override installed at release spreads by gossip before
// the drain finishes, so a retried move can land in this branch while
// the local copy is still behind the sealed final sequence; the
// override records the releasing node and that sequence exactly so
// completion is checkable here. A copy at or past FinalSeq is done;
// anything else resumes the drain instead of reporting a success that
// would silently drop the events between the local horizon and the
// seal.
func (c *Controller) completeLocal(ctx context.Context, session string) (api.MoveResponse, error) {
	ov, moved := c.state.OverrideFor(session)
	resumable := moved && ov.From != "" && ov.From != c.self.Name && ov.FinalSeq > 0
	s, have := c.reg.Get(session)
	if have && (!resumable || s.Vertices() >= ov.FinalSeq) {
		return api.MoveResponse{Session: session, From: c.self.Name, To: c.self.Name,
			Events: s.Vertices(), Map: c.state.Map()}, nil
	}
	if !resumable {
		return api.MoveResponse{}, api.Errorf(api.CodeSessionNotFound, "no session %q anywhere in the cluster", session)
	}
	src, ok := c.state.Map().Node(ov.From)
	if !ok {
		return api.MoveResponse{}, api.Errorf(api.CodeUnknown,
			"session %q was released by node %q, which is not in the map", session, ov.From)
	}
	var localSeq int64
	if have {
		localSeq = s.Vertices()
	}
	c.moves.With("resumed").Inc()
	c.logf("cluster: resuming interrupted move of %q from %s (have %d, need %d)",
		session, src.Name, localSeq, ov.FinalSeq)
	if !have {
		var pst api.SessionStats
		if err := c.getJSON(ctx, src.URL, "/v1/sessions/"+url.PathEscape(session), &pst); err != nil {
			return api.MoveResponse{}, fmt.Errorf("cluster: fetch session %q from %s: %w", session, src.Name, err)
		}
		var err error
		if s, err = c.adopt(ctx, src, pst); err != nil {
			return api.MoveResponse{}, err
		}
	} else {
		// The behind copy may carry a seal from an interrupted earlier
		// hop; the map says this node owns the session, so reopen it.
		s.Unseal()
	}
	if err := c.drain(ctx, s, src.URL, session, ov.FinalSeq); err != nil {
		return api.MoveResponse{}, err
	}
	if err := c.verifyMoveChain(s, session, ov.FinalSeq, ov.ChainHead); err != nil {
		return api.MoveResponse{}, err
	}
	c.moves.With("completed").Inc()
	c.logf("cluster: session %q drain resumed and completed (%d events)", session, s.Vertices())
	return api.MoveResponse{Session: session, From: ov.From, To: c.self.Name,
		Events: s.Vertices(), Map: c.state.Map()}, nil
}

// drain tails the source until the local copy has applied through the
// sealed final sequence. The last batch's commit may still be in
// flight on the source (the tailer only ships durable records), so an
// empty round while still behind just retries.
func (c *Controller) drain(ctx context.Context, s *service.Session, srcURL, session string, finalSeq int64) error {
	for s.Vertices() < finalSeq {
		n, err := c.tailRound(ctx, s, srcURL, session)
		if err != nil {
			return fmt.Errorf("cluster: drain %q to seq %d: %w", session, finalSeq, err)
		}
		if n == 0 && s.Vertices() < finalSeq {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	return nil
}

// verifyMoveChain re-verifies the drained copy's hash chain against
// the head the source sealed at FinalSeq, before the override flips
// routing here. The drained frames are byte-identical to the source's
// WAL records, so a clean move reproduces the sealed head exactly; a
// mismatch means the history this node applied is not the history
// that was sealed (the source's log — or the stream — was rewritten),
// and the move fails instead of serving it. Verification is skipped
// when either side has no chain: the source carried no head
// (memory-only), or the local copy's chain state does not land on
// FinalSeq (memory target, or a resumed drain over a local prefix
// this process cannot re-hash).
func (c *Controller) verifyMoveChain(s *service.Session, session string, finalSeq int64, sealedHead string) error {
	if sealedHead == "" {
		return nil
	}
	seq, head, ok := s.ChainState()
	if !ok || seq != finalSeq {
		c.logf("cluster: move of %q: no comparable local chain at seq %d; chain verification skipped", session, finalSeq)
		return nil
	}
	if have := head.String(); have != sealedHead {
		return api.Errorf(api.CodeUnknown,
			"integrity: move of %q: chain head %s at sealed seq %d does not match the head %s the source sealed — drained history was tampered with; refusing to serve it",
			session, have, finalSeq, sealedHead)
	}
	c.logf("cluster: move of %q: chain verified at seq %d (%s)", session, finalSeq, sealedHead)
	return nil
}

// adopt rebuilds (or resumes) the local copy of the owner's session,
// mirroring what a replica does: fetch the spec, compile, copy the
// labeling configuration and the identity.
func (c *Controller) adopt(ctx context.Context, owner api.ClusterNode, pst api.SessionStats) (*service.Session, error) {
	if s, ok := c.reg.Get(pst.Name); ok {
		if lid := s.ID(); lid != "" && pst.ID != "" && lid != pst.ID {
			return nil, api.Errorf(api.CodeSessionExists,
				"local copy of %q has identity %s, the owner's is %s; delete the local copy first", pst.Name, lid, pst.ID)
		}
		// A retained copy was sealed when the session moved away; this
		// node is taking it back, so reopen ingest for the tailer's
		// replay. External writes stay rejected by Route until the
		// drain completes and the map flips here.
		s.Unseal()
		return s, nil
	}
	raw, err := c.getBytes(ctx, owner.URL, "/v1/sessions/"+url.PathEscape(pst.Name)+"/spec")
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch spec of %q: %w", pst.Name, err)
	}
	sp, err := wfxml.DecodeSpec(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("cluster: decode spec of %q: %w", pst.Name, err)
	}
	g, err := spec.Compile(sp)
	if err != nil {
		return nil, fmt.Errorf("cluster: compile spec of %q: %w", pst.Name, err)
	}
	cfg, err := service.ParseConfig(pst.Skeleton, pst.Mode)
	if err != nil {
		return nil, fmt.Errorf("cluster: labeling config of %q: %w", pst.Name, err)
	}
	cfg.Shards = len(pst.Shards)
	// The copy keeps the owner session's identity: a move transfers the
	// session, it does not mint a new one.
	cfg.ID = pst.ID
	return c.reg.Create(pst.Name, g, cfg)
}

// tailRound drains the owner's currently committed WAL history for the
// session into the local copy (wait=false: the stream ends at the
// committed horizon) and returns how many events it applied. The local
// vertex count is the resume cursor — every applied event labels
// exactly one vertex, so it equals the last applied owner sequence.
func (c *Controller) tailRound(ctx context.Context, s *service.Session, ownerURL, session string) (int64, error) {
	from := s.Vertices() + 1
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/sessions/%s/wal?from=%d&wait=false", ownerURL, url.PathEscape(session), from), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, decodeAPIError(resp)
	}

	tr := api.NewTailReader(resp.Body)
	var applied int64
	recs := make([]wal.Record, 0, c.opts.BatchSize)
	frames := make([][]byte, 0, c.opts.BatchSize)
	var frameBuf []byte
	apply := func() error {
		if len(recs) == 0 {
			return nil
		}
		n, err := s.AppendRecords(recs, frames)
		applied += int64(n)
		if err != nil {
			// Labeling is deterministic; a rejected replayed event means
			// the copy diverged from the owner's log.
			return fmt.Errorf("apply at seq %d: %w", s.Vertices(), err)
		}
		recs, frames, frameBuf = recs[:0], frames[:0], frameBuf[:0]
		return nil
	}
	for {
		entry, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return applied, apply()
		}
		if err != nil {
			if aerr := apply(); aerr != nil {
				return applied, aerr
			}
			return applied, err
		}
		if expect := s.Vertices() + int64(len(recs)) + 1; entry.Seq != expect {
			if aerr := apply(); aerr != nil {
				return applied, aerr
			}
			return applied, fmt.Errorf("tail of %q jumped to seq %d, want %d", session, entry.Seq, expect)
		}
		// The entry's frame is reused by the next read; stash a copy in
		// one grow-only batch buffer.
		start := len(frameBuf)
		frameBuf = append(frameBuf, entry.Frame...)
		recs = append(recs, entry.Record)
		frames = append(frames, frameBuf[start:len(frameBuf):len(frameBuf)])
		if len(recs) >= c.opts.BatchSize {
			if err := apply(); err != nil {
				return applied, err
			}
		}
	}
}

// Release is the owner side of a move (service.ClusterHooks.Release):
// seal the session — fixing the last sequence any writer got in — and
// install the override so this node's own map names the new owner.
// Re-POSTing is safe: sealing twice is a no-op and the override just
// re-installs.
func (c *Controller) Release(_ context.Context, req api.ReleaseRequest) (api.ReleaseResponse, error) {
	if req.Session == "" || req.Node == "" || req.URL == "" {
		return api.ReleaseResponse{}, api.Errorf(api.CodeBadRequest, "release wants session, node and url")
	}
	s, ok := c.reg.Get(req.Session)
	if !ok {
		return api.ReleaseResponse{}, api.Errorf(api.CodeSessionNotFound, "no session %q", req.Session)
	}
	// The override records this node and the sealed sequence so a move
	// interrupted after this point can verify and resume its drain.
	final := s.Seal(req.URL)
	// The seal ended ingest, so the chain head is final too: it commits
	// to every byte the new owner must have applied at FinalSeq. Carried
	// in the override, it survives an interrupted move by gossip.
	var head string
	if seq, h, ok := s.ChainState(); ok && seq == final {
		head = h.String()
	}
	if _, err := c.state.Override(req.Session, req.Node, c.self.Name, final, head); err != nil {
		return api.ReleaseResponse{}, api.Errorf(api.CodeBadRequest, "%v", err)
	}
	c.moves.With("released").Inc()
	c.logf("cluster: released session %q to %s at seq %d (map v%d)", req.Session, req.Node, final, c.state.Version())
	return api.ReleaseResponse{FinalSeq: final, ChainHead: head, Map: c.state.Map()}, nil
}

// getJSON GETs base+path with the unary timeout and decodes the JSON
// response into out.
func (c *Controller) getJSON(ctx context.Context, base, path string, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.opts.HTTPTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// getBytes GETs base+path with the unary timeout and returns the body.
func (c *Controller) getBytes(ctx context.Context, base, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.opts.HTTPTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// postJSON POSTs body as JSON to base+path and decodes the response
// into out. unary applies the unary timeout; a forwarded move runs on
// the caller's context alone (it can legitimately take as long as the
// catch-up does).
func (c *Controller) postJSON(ctx context.Context, base, path string, body, out any, unary bool) error {
	if unary {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.HTTPTimeout)
		defer cancel()
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", api.ContentTypeJSON)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError rebuilds the structured error from a non-2xx peer
// response.
func decodeAPIError(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var er api.ErrorResponse
	if json.Unmarshal(b, &er) == nil && er.Err != nil && er.Err.Code != "" {
		er.Err.HTTPStatus = resp.StatusCode
		return er.Err
	}
	return api.Errorf(api.CodeUnknown, "unexpected status %s", resp.Status)
}
