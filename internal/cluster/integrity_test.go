package cluster_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfreach/internal/api"
	"wfreach/internal/service"
	"wfreach/internal/spec"
	"wfreach/internal/wal"
	"wfreach/internal/wfspecs"
)

// TestMoveCarriesAndVerifiesChain: a move between durable nodes seals
// the source's chain head into the override, and the drained copy on
// the target independently reproduces it — the positive half of the
// move-time tamper check.
func TestMoveCarriesAndVerifiesChain(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner, target := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s, events := createWithEvents(t, owner.reg, sess, 500)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}
	srcSeq, srcHead, ok := s.ChainState()
	if !ok || srcSeq != int64(len(events)) {
		t.Fatalf("source ChainState = (%d, _, %v), want (%d, _, true)", srcSeq, ok, len(events))
	}

	ctx := context.Background()
	if _, err := target.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"}); err != nil {
		t.Fatal(err)
	}

	// The override carries the sealed head verbatim.
	ov, moved := target.ctl.State().OverrideFor(sess)
	if !moved {
		t.Fatal("no override after move")
	}
	if ov.ChainHead == "" {
		t.Fatal("override carries no chain head from a durable source")
	}
	if ov.ChainHead != srcHead.String() || ov.FinalSeq != srcSeq {
		t.Fatalf("override (%s at %d), source sealed (%s at %d)", ov.ChainHead, ov.FinalSeq, srcHead, srcSeq)
	}
	// The target rebuilt the same head from the drained frames.
	moved2, have := target.reg.Get(sess)
	if !have {
		t.Fatal("target has no copy")
	}
	seq, head, ok := moved2.ChainState()
	if !ok || seq != srcSeq || head != srcHead {
		t.Fatalf("target ChainState = (%d, %s, %v), want (%d, %s, true)", seq, head, ok, srcSeq, srcHead)
	}
}

// findMoveTamper mirrors the follower drill's search: a single-byte
// payload flip (frame CRC fixed) after which the WAL still decodes and
// replays cleanly, so the drain succeeds and only the chain check can
// object.
func findMoveTamper(t *testing.T, walPath string, g *spec.Grammar) []byte {
	t.Helper()
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for off := int64(0); off < int64(len(raw)); {
		offs = append(offs, off)
		off += int64(wal.FrameHeaderSize) + int64(binary.LittleEndian.Uint32(raw[off:]))
	}
	tmp := filepath.Join(t.TempDir(), "cand.wal")
	replays := func(cand []byte) bool {
		if err := os.WriteFile(tmp, cand, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []wal.Record
		if _, _, err := wal.Scan(tmp, func(_ int, rec wal.Record) error {
			recs = append(recs, rec)
			return nil
		}); err != nil {
			return false
		}
		reg := service.NewRegistry()
		s, err := reg.Create("probe", g, service.Config{})
		if err != nil {
			t.Fatal(err)
		}
		_, aerr := s.AppendRecords(recs, nil)
		return aerr == nil
	}
	for idx := len(offs) - 1; idx >= 0 && idx >= len(offs)-60; idx-- {
		off := offs[idx]
		plen := int(binary.LittleEndian.Uint32(raw[off:]))
		for pos := 1; pos < plen; pos++ {
			for _, x := range []byte{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40} {
				cand := bytes.Clone(raw)
				payload := cand[off+wal.FrameHeaderSize : off+wal.FrameHeaderSize+int64(plen)]
				payload[pos] ^= x
				binary.LittleEndian.PutUint32(cand[off+4:], crc32.ChecksumIEEE(payload))
				if replays(cand) {
					return cand
				}
			}
		}
	}
	t.Fatal("no labelable single-byte tamper found (the drill needs one)")
	return nil
}

// TestMoveRejectsTamperedDrain is the cluster leg of the tamper drill:
// the source's on-disk WAL is rewritten (CRC fixed, still replayable)
// while the source process still answers for the original bytes. The
// drain applies cleanly, the sealed head disagrees, and the move must
// fail before the override flips routing to the forged copy.
func TestMoveRejectsTamperedDrain(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner, target := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s, events := createWithEvents(t, owner.reg, sess, 300)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}
	g := spec.MustCompile(wfspecs.RunningExample())

	walPath := filepath.Join(owner.dir, sess, "events.wal")
	tampered := findMoveTamper(t, walPath, g)
	if err := os.WriteFile(walPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	_, err := target.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"})
	if err == nil {
		t.Fatal("move served a rewritten history without objecting")
	}
	if !strings.Contains(err.Error(), "tampered") {
		t.Fatalf("move failed for the wrong reason: %v", err)
	}
	// The forged copy never went live: the target still routes the
	// session to its (sealed) source.
	if got := target.ctl.State().Place(sess).Name; got != "n0" {
		t.Fatalf("target flipped routing to %s despite a failed chain check", got)
	}
}
