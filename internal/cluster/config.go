package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"

	"wfreach/internal/api"
)

// LoadMap reads a cluster map from a JSON config file (the -cluster
// flag). The file is the api.ClusterMap wire shape:
//
//	{
//	  "version": 1,
//	  "nodes": [
//	    {"name": "a", "url": "http://127.0.0.1:8081", "follower": "http://127.0.0.1:9081"},
//	    {"name": "b", "url": "http://127.0.0.1:8082", "weight": 2}
//	  ]
//	}
//
// Every node in a cluster loads the same file; placement is
// deterministic in the map, so no further coordination is needed to
// agree who owns what. Overrides in the file are honored (an operator
// can pin sessions), though they normally appear only at runtime, as
// moves install them.
func LoadMap(path string) (api.ClusterMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return api.ClusterMap{}, fmt.Errorf("cluster: read map: %w", err)
	}
	var m api.ClusterMap
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return api.ClusterMap{}, fmt.Errorf("cluster: parse map %s: %w", path, err)
	}
	if err := ValidateMap(m); err != nil {
		return api.ClusterMap{}, fmt.Errorf("cluster: map %s: %w", path, err)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Name < m.Nodes[j].Name })
	return m, nil
}

// ValidateMap checks a map's internal consistency: non-empty unique
// node names, parseable absolute base URLs, non-negative weights, and
// overrides that name known nodes.
func ValidateMap(m api.ClusterMap) error {
	if len(m.Nodes) == 0 {
		return fmt.Errorf("no nodes")
	}
	names := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("node %d has no name", i)
		}
		if names[n.Name] {
			return fmt.Errorf("duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		if err := checkBaseURL(n.URL); err != nil {
			return fmt.Errorf("node %q: %w", n.Name, err)
		}
		if n.Follower != "" {
			if err := checkBaseURL(n.Follower); err != nil {
				return fmt.Errorf("node %q follower: %w", n.Name, err)
			}
		}
		if n.Weight < 0 {
			return fmt.Errorf("node %q: negative weight %d", n.Name, n.Weight)
		}
	}
	for sess, ov := range m.Overrides {
		if !names[ov.Node] && !ov.Deleted {
			return fmt.Errorf("override for session %q names unknown node %q", sess, ov.Node)
		}
	}
	return nil
}

// checkBaseURL requires an absolute http(s) URL with a host.
func checkBaseURL(s string) error {
	if s == "" {
		return fmt.Errorf("empty url")
	}
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("bad url %q: %w", s, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return fmt.Errorf("url %q is not an absolute http(s) base url", s)
	}
	return nil
}
