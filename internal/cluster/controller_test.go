package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wfreach/internal/api"
	"wfreach/internal/cluster"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/service"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

// node is one test cluster member: a durable registry, its HTTP
// server, and the controller gating it.
type node struct {
	name string
	dir  string
	reg  *service.Registry
	srv  *httptest.Server
	ctl  *cluster.Controller
}

// newCluster spins up n durable single-process nodes named "n0".."n",
// builds the shared map from their live URLs, and installs a
// controller on each. The prober is not started — tests drive map
// exchange explicitly through moves.
func newCluster(t *testing.T, n int) []*node {
	t.Helper()
	nodes := make([]*node, n)
	m := api.ClusterMap{Version: 1}
	for i := range nodes {
		dir := t.TempDir()
		reg, err := service.NewDurableRegistry(service.DurableOptions{Dir: dir, Fsync: false})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = reg.Close() })
		srv := httptest.NewServer(service.NewHandler(reg))
		t.Cleanup(srv.Close)
		nodes[i] = &node{name: fmt.Sprintf("n%d", i), dir: dir, reg: reg, srv: srv}
		m.Nodes = append(m.Nodes, api.ClusterNode{Name: nodes[i].name, URL: srv.URL})
	}
	for _, nd := range nodes {
		ctl, err := cluster.New(nd.name, m, nd.reg, cluster.Options{Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		nd.ctl = ctl
	}
	return nodes
}

// byName returns the cluster member with the given node name.
func byName(t *testing.T, nodes []*node, name string) *node {
	t.Helper()
	for _, nd := range nodes {
		if nd.name == name {
			return nd
		}
	}
	t.Fatalf("no node %q", name)
	return nil
}

// sessionOwnedBy finds a session name the map places on the node.
func sessionOwnedBy(t *testing.T, ctl *cluster.Controller, node string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		s := fmt.Sprintf("sess-%d", i)
		if ctl.State().Place(s).Name == node {
			return s
		}
	}
	t.Fatalf("no session hashes to node %q", node)
	return ""
}

// createWithEvents builds the session on the registry and generates
// its event stream (not yet ingested).
func createWithEvents(t *testing.T, reg *service.Registry, name string, size int) (*service.Session, []run.Event) {
	t.Helper()
	g := spec.MustCompile(wfspecs.RunningExample())
	s, err := reg.Create(name, g, service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	events, _, err := gen.GenerateEvents(g, gen.Options{TargetSize: size, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return s, events
}

// getStatus GETs the URL and returns the status code plus, for error
// responses, the decoded structured error.
func getStatus(t *testing.T, url string) (int, *api.Error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 {
		return resp.StatusCode, nil
	}
	var er api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Err == nil {
		t.Fatalf("GET %s: status %d with undecodable error body (%v)", url, resp.StatusCode, err)
	}
	return resp.StatusCode, er.Err
}

// TestClusterGating checks the placement gate end to end over HTTP:
// the owner serves, every other node answers wrong_node naming the
// owner, and the control-plane routes respond.
func TestClusterGating(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner, other := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s, events := createWithEvents(t, owner.reg, sess, 100)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}

	if code, _ := getStatus(t, owner.srv.URL+"/v1/sessions/"+sess); code != http.StatusOK {
		t.Fatalf("owner read: %d", code)
	}
	code, aerr := getStatus(t, other.srv.URL+"/v1/sessions/"+sess)
	if code != http.StatusMisdirectedRequest || aerr.Code != api.CodeWrongNode {
		t.Fatalf("non-owner read: %d %+v", code, aerr)
	}
	if u, ok := api.OwnerFromError(aerr); !ok || u != owner.srv.URL {
		t.Fatalf("wrong_node detail %q, want owner URL %q", aerr.Detail, owner.srv.URL)
	}
	// Creates are gated too: the non-owner refuses to create a
	// session it does not own.
	body := bytes.NewBufferString(`{"name": "` + sess + `", "builtin": "RunningExample"}`)
	resp, err := http.Post(other.srv.URL+"/v1/sessions", api.ContentTypeJSON, body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("non-owner create: %d", resp.StatusCode)
	}

	var m api.ClusterMap
	mustGetJSON(t, other.srv.URL+"/v1/cluster/map", &m)
	if m.Version != 1 || len(m.Nodes) != 2 {
		t.Fatalf("cluster map %+v", m)
	}
	var h api.ClusterHealth
	mustGetJSON(t, owner.srv.URL+"/v1/cluster/health", &h)
	if h.Node != "n0" || h.Role != api.RolePrimary || len(h.Peers) != 1 || h.Peers[0].Name != "n1" {
		t.Fatalf("cluster health %+v", h)
	}
}

// TestClusterRoutesRequireClusterMode checks the control plane
// answers not_clustered on a plain server.
func TestClusterRoutesRequireClusterMode(t *testing.T) {
	srv := httptest.NewServer(service.NewHandler(service.NewRegistry()))
	defer srv.Close()
	code, aerr := getStatus(t, srv.URL+"/v1/cluster/map")
	if code != http.StatusConflict || aerr.Code != api.CodeNotClustered {
		t.Fatalf("map on plain server: %d %+v", code, aerr)
	}
}

// TestMoveLive moves a session between nodes while a writer is
// ingesting: every event accepted by either owner must be on the new
// owner afterwards, the old owner must seal against further writes,
// and placement must flip on both nodes.
func TestMoveLive(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner, target := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s, events := createWithEvents(t, owner.reg, sess, 4000)
	// The writer streams the prefix; the suffix is reserved for
	// post-move appends on the new owner.
	stream, spare := events[:len(events)-100], events[len(events)-100:]

	// Writer: append in small batches until sealed. The seal check
	// runs under the ingest lock at batch start, so a batch either
	// fully lands or is fully rejected — accepted is exact.
	accepted := make(chan int, 1)
	go func() {
		n := 0
		for n < len(stream) {
			b := stream[n:]
			if len(b) > 50 {
				b = b[:50]
			}
			if _, err := s.Append(b); err != nil {
				var ae *api.Error
				if !errors.As(err, &ae) || ae.Code != api.CodeReadOnly {
					t.Errorf("writer: %v", err)
				}
				break
			}
			n += len(b)
		}
		accepted <- n
	}()

	// Wait until a few batches have landed so the move genuinely
	// overlaps live writes.
	deadline := time.Now().Add(5 * time.Second)
	for s.Vertices() < 200 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	resp, err := target.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"})
	if err != nil {
		t.Fatal(err)
	}
	n := <-accepted
	if resp.From != "n0" || resp.To != "n1" {
		t.Fatalf("move response %+v", resp)
	}
	if n == 0 {
		t.Fatal("writer landed nothing before the move — test proves nothing")
	}

	// The new owner has every accepted event. (The move's own Events
	// snapshot may predate the writer's last sealed-out batch only if
	// the seal lost a race — it must not.)
	moved, ok := target.reg.Get(sess)
	if !ok {
		t.Fatal("target has no copy")
	}
	if got := moved.Vertices(); got != int64(n) {
		t.Fatalf("target applied %d events, writer landed %d", got, n)
	}
	if resp.Events != int64(n) {
		t.Fatalf("move reported %d events, writer landed %d", resp.Events, n)
	}

	// Both nodes now place the session on n1.
	for _, nd := range nodes {
		if got := nd.ctl.State().Place(sess).Name; got != "n1" {
			t.Errorf("%s places %q on %s after move", nd.name, sess, got)
		}
	}

	// Everything the writer did not land, plus the reserved suffix,
	// continues on the new owner.
	remaining := append(append([]run.Event(nil), stream[n:]...), spare...)

	// The old owner's copy is sealed: direct appends bounce with
	// read_only naming the new owner (rejected before application, so
	// the event is free to land on the new owner below)...
	_, err = s.Append(remaining[:1])
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeReadOnly || ae.Detail != target.srv.URL {
		t.Fatalf("append on sealed copy: %v", err)
	}
	// ...and so do HTTP writes, while stale reads still serve.
	if code, _ := getStatus(t, owner.srv.URL+"/v1/sessions/"+sess); code != http.StatusOK {
		t.Errorf("stale read on old owner: %d", code)
	}

	// The new owner accepts writes; the stream completes there.
	if _, err := moved.Append(remaining); err != nil {
		t.Fatalf("append on new owner: %v", err)
	}
	if got := moved.Vertices(); got != int64(len(events)) {
		t.Fatalf("after completing on new owner: %d vertices, want %d", got, len(events))
	}

	// Identity move: already owned and present — immediate success.
	again, err := target.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"})
	if err != nil || again.From != "n1" || again.To != "n1" {
		t.Fatalf("identity move: %+v, %v", again, err)
	}
}

// TestMoveBackToFormerOwner moves a session away and back again: the
// former owner's retained copy was sealed by the first move, so the
// move-back must reopen it, replay everything the interim owner
// ingested, and leave the session writable on the original node (and
// sealed on the other) — not deadlocked with both copies sealed.
func TestMoveBackToFormerOwner(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	n0, n1 := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s0, events := createWithEvents(t, n0.reg, sess, 600)
	a, b := len(events)/3, 2*len(events)/3
	if _, err := s0.Append(events[:a]); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := n1.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"}); err != nil {
		t.Fatal(err)
	}
	s1, ok := n1.reg.Get(sess)
	if !ok {
		t.Fatal("no copy on n1 after first move")
	}
	// The interim owner ingests the middle third; the move-back must
	// carry it into n0's retained copy.
	if _, err := s1.Append(events[a:b]); err != nil {
		t.Fatal(err)
	}
	resp, err := n0.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n0"})
	if err != nil {
		t.Fatalf("move back: %v", err)
	}
	if resp.From != "n1" || resp.To != "n0" || resp.Events != int64(b) {
		t.Fatalf("move-back response %+v, want n1→n0 with %d events", resp, b)
	}
	for _, nd := range nodes {
		if got := nd.ctl.State().Place(sess).Name; got != "n0" {
			t.Errorf("%s places %q on %s after move-back", nd.name, sess, got)
		}
	}
	// The original owner serves writes again; the interim owner's copy
	// is now the sealed one.
	if _, err := s0.Append(events[b:]); err != nil {
		t.Fatalf("append on returned owner: %v", err)
	}
	if got := s0.Vertices(); got != int64(len(events)) {
		t.Fatalf("returned owner has %d events, want %d", got, len(events))
	}
	var ae *api.Error
	if _, err := s1.Append(events[b : b+1]); !errors.As(err, &ae) || ae.Code != api.CodeReadOnly {
		t.Fatalf("append on interim owner's retained copy: %v, want read_only", err)
	}
}

// TestMoveResumesInterruptedDrain simulates a move that died between
// the owner's release and the end of the drain: the override (with the
// sealed final sequence) is already installed and gossiping, the
// target's copy is behind. A retried move must not report success off
// the behind copy — it must resume the drain to the recorded seal.
func TestMoveResumesInterruptedDrain(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	n0, n1 := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s0, events := createWithEvents(t, n0.reg, sess, 400)
	if _, err := s0.Append(events); err != nil {
		t.Fatal(err)
	}

	// Half-replicated copy on the target, identity shared — what an
	// interrupted catch-up leaves behind (labeling is deterministic, so
	// replaying the prefix builds the identical copy).
	g := spec.MustCompile(wfspecs.RunningExample())
	s1, err := n1.reg.Create(sess, g, service.Config{ID: s0.ID()})
	if err != nil {
		t.Fatal(err)
	}
	half := len(events) / 2
	if _, err := s1.Append(events[:half]); err != nil {
		t.Fatal(err)
	}

	// The owner released (seal + override), then the target crashed
	// before draining; the override still reaches the target by gossip.
	ctx := context.Background()
	rel, err := n0.ctl.Release(ctx, api.ReleaseRequest{Session: sess, Node: "n1", URL: n1.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if rel.FinalSeq != int64(len(events)) {
		t.Fatalf("release sealed at %d, want %d", rel.FinalSeq, len(events))
	}
	if _, err := n1.ctl.State().Merge(rel.Map); err != nil {
		t.Fatal(err)
	}

	// While behind the seal the target must not accept writes — a
	// stray batch would interleave with the undrained suffix and fork
	// the copy from the owner's log.
	var ae *api.Error
	if err := n1.ctl.Route(sess, true); !errors.As(err, &ae) || ae.Code != api.CodeReadOnly {
		t.Fatalf("write route to behind copy: %v, want read_only", err)
	}
	if err := n1.ctl.Route(sess, false); err != nil {
		t.Fatalf("read route to behind copy: %v, want served", err)
	}

	// The retried move lands in the "already placed here" branch and
	// must finish the drain rather than trust the behind copy.
	resp, err := n1.ctl.Move(ctx, api.MoveRequest{Session: sess, Target: "n1"})
	if err != nil {
		t.Fatalf("resumed move: %v", err)
	}
	if resp.Events != int64(len(events)) || s1.Vertices() != int64(len(events)) {
		t.Fatalf("resumed move drained to %d (response %d), want %d", s1.Vertices(), resp.Events, len(events))
	}
	if err := n1.ctl.Route(sess, true); err != nil {
		t.Fatalf("write route after drain: %v, want served", err)
	}

	// Same interruption with no local copy at all (crash before the
	// durable adopt): this time nobody retries the move — the target's
	// own prober must notice and resume the drain.
	sess2 := ""
	for i := 0; ; i++ {
		s := fmt.Sprintf("other-%d", i)
		if nodes[0].ctl.State().Place(s).Name == "n0" && s != sess {
			sess2 = s
			break
		}
	}
	s2, events2 := createWithEvents(t, n0.reg, sess2, 200)
	if _, err := s2.Append(events2); err != nil {
		t.Fatal(err)
	}
	rel2, err := n0.ctl.Release(ctx, api.ReleaseRequest{Session: sess2, Node: "n1", URL: n1.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.ctl.State().Merge(rel2.Map); err != nil {
		t.Fatal(err)
	}
	n1.ctl.Start()
	defer n1.ctl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s2b, ok := n1.reg.Get(sess2); ok && s2b.Vertices() == int64(len(events2)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never resumed the interrupted move")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := n1.ctl.Route(sess2, true); err != nil {
		t.Fatalf("write route after prober-resumed drain: %v, want served", err)
	}
}

// TestMoveForwarded checks POSTing a move to a non-target node
// forwards it to the target, and the forwarder adopts the new map.
func TestMoveForwarded(t *testing.T) {
	nodes := newCluster(t, 3)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner := byName(t, nodes, "n0")
	s, events := createWithEvents(t, owner.reg, sess, 300)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}

	// POST the move to n2 — neither owner nor target.
	forwarder := byName(t, nodes, "n2")
	payload, _ := json.Marshal(api.MoveRequest{Session: sess, Target: "n1"})
	resp, err := http.Post(forwarder.srv.URL+"/v1/cluster/move", api.ContentTypeJSON, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mv api.MoveResponse
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded move: %d, %v", resp.StatusCode, err)
	}
	if mv.From != "n0" || mv.To != "n1" || mv.Events != int64(len(events)) {
		t.Fatalf("forwarded move response %+v (ingested %d)", mv, len(events))
	}
	// The forwarder learned the override from the response; the third
	// party that saw nothing (n0 did, it released) is the prober's
	// job, exercised in TestProbeSpreadsOverrides.
	if got := forwarder.ctl.State().Place(sess).Name; got != "n1" {
		t.Errorf("forwarder places %q on %s, want n1", sess, got)
	}

	// Moving an unknown session fails cleanly.
	_, err = byName(t, nodes, "n1").ctl.Move(context.Background(),
		api.MoveRequest{Session: "never-created-xyz", Target: "n1"})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("move of unknown session: %v", err)
	}
}

// TestProbeSpreadsOverrides checks the prober carries overrides to
// nodes that did not participate in a move.
func TestProbeSpreadsOverrides(t *testing.T) {
	nodes := newCluster(t, 3)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner := byName(t, nodes, "n0")
	s, events := createWithEvents(t, owner.reg, sess, 100)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}
	target := byName(t, nodes, "n1")
	if _, err := target.ctl.Move(context.Background(), api.MoveRequest{Session: sess, Target: "n1"}); err != nil {
		t.Fatal(err)
	}
	bystander := byName(t, nodes, "n2")
	if got := bystander.ctl.State().Place(sess).Name; got != "n0" {
		t.Fatalf("bystander already knows (%s) — probe test is vacuous", got)
	}
	bystander.ctl.Start()
	defer bystander.ctl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for bystander.ctl.State().Place(sess).Name != "n1" {
		if time.Now().After(deadline) {
			t.Fatal("probe never spread the override")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeleteForgetsOverride checks deleting a moved session drops its
// override so the name's placement reverts to the ring.
func TestDeleteForgetsOverride(t *testing.T) {
	nodes := newCluster(t, 2)
	sess := sessionOwnedBy(t, nodes[0].ctl, "n0")
	owner, target := byName(t, nodes, "n0"), byName(t, nodes, "n1")
	s, events := createWithEvents(t, owner.reg, sess, 50)
	if _, err := s.Append(events); err != nil {
		t.Fatal(err)
	}
	if _, err := target.ctl.Move(context.Background(), api.MoveRequest{Session: sess, Target: "n1"}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, target.srv.URL+"/v1/sessions/"+sess, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete on new owner: %d", resp.StatusCode)
	}
	if got := target.ctl.State().Place(sess).Name; got != "n0" {
		t.Errorf("placement after delete %s, want ring placement n0", got)
	}
}

func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(url, "/map") {
		// Sanity: the wire map must round-trip through validation.
		if m, ok := out.(*api.ClusterMap); ok {
			if err := cluster.ValidateMap(*m); err != nil {
				t.Fatalf("served map invalid: %v", err)
			}
		}
	}
}
