// Package cluster shards labeling sessions across multiple primary
// servers. The paper's labeling scheme is per-execution by
// construction — sessions never share label state — so the session is
// the natural shard key: a cluster is simply N independent primaries
// plus an agreement about which one owns which session.
//
// That agreement is the cluster map (api.ClusterMap): a static node
// set hashed onto a consistent-hash ring, plus explicit per-session
// overrides for sessions that were moved. Placement is a pure function
// of the map, so every node and every client holding the same map
// routes identically, and a stale map costs exactly one redirect (the
// rejection names the owner).
//
// The package provides the ring (ring.go), the node-local map state
// with merge semantics (state.go), map-file loading (config.go), and
// the control-plane handlers + session mover (controller.go). The
// mover rides the replication machinery from internal/replica: the
// target tails the session's WAL from the owner, catches up, asks the
// owner to seal the session and install the override, drains the tail
// to the sealed final sequence, and starts serving.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"wfreach/internal/api"
)

// pointsPerWeight is the number of virtual ring points per unit of
// node weight. 64 points keep the load spread within a few percent of
// proportional for small clusters while the ring stays tiny.
const pointsPerWeight = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring places session names on nodes by consistent hashing: each node
// contributes weight×64 virtual points, a session maps to the first
// point clockwise of its hash. Adding or removing one node only moves
// the sessions that hashed to that node's points — the property that
// makes future membership changes cheap. A Ring is immutable after
// New.
type Ring struct {
	nodes  []api.ClusterNode
	points []ringPoint
}

// NewRing builds the ring over the map's node set. Node names must be
// unique and non-empty.
func NewRing(nodes []api.ClusterNode) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node set")
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{nodes: append([]api.ClusterNode(nil), nodes...)}
	for i, n := range r.nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("cluster: node %d has no name", i)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		w := n.Weight
		if w <= 0 {
			w = 1
		}
		for p := 0; p < w*pointsPerWeight; p++ {
			// FNV values of near-identical strings ("a#0", "a#1", …)
			// are heavily correlated, which bunches a node's points on
			// one stretch of the ring; the finalizer scatters them.
			r.points = append(r.points, ringPoint{hash: mix64(hash64(fmt.Sprintf("%s#%d", n.Name, p))), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Colliding points order by node name so every builder of the
		// same node set agrees on the winner.
		return r.nodes[r.points[a].node].Name < r.nodes[r.points[b].node].Name
	})
	return r, nil
}

// Place returns the node owning the session by hash placement alone
// (overrides are the State's business, see State.Place).
func (r *Ring) Place(session string) api.ClusterNode {
	// Session names come in correlated families too ("load-0",
	// "load-1", …), so the key gets the same avalanche as the points —
	// without it a dozen sibling sessions can all land on one arc.
	h := mix64(hash64(session))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise of the top of the ring
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the ring's node set (shared; callers must not mutate).
func (r *Ring) Nodes() []api.ClusterNode { return r.nodes }

// hash64 is the ring's hash function. FNV-1a is stable across
// processes and platforms — a requirement, since clients and servers
// must compute identical placements — and plenty uniform for spreading
// sessions over a few dozen virtual points per node.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is a murmur3-style finalizer: a bijective avalanche over the
// point hashes so virtual points spread uniformly around the ring
// regardless of how correlated their source strings are. Like the
// hash, it must never change — placement depends on it.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
