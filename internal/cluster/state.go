package cluster

import (
	"fmt"
	"sync"

	"wfreach/internal/api"
)

// State is a node's (or client's) live view of the cluster map: the
// immutable ring plus the mutable, versioned override set. All methods
// are safe for concurrent use.
type State struct {
	ring *Ring

	mu        sync.RWMutex
	version   int64
	overrides map[string]api.ClusterOverride
}

// NewState builds a State over the map. The node set must be
// non-empty; overrides naming unknown nodes are rejected.
func NewState(m api.ClusterMap) (*State, error) {
	ring, err := NewRing(m.Nodes)
	if err != nil {
		return nil, err
	}
	st := &State{ring: ring, version: m.Version, overrides: make(map[string]api.ClusterOverride)}
	for sess, ov := range m.Overrides {
		if _, ok := st.node(ov.Node); !ok && !ov.Deleted {
			return nil, fmt.Errorf("cluster: override for session %q names unknown node %q", sess, ov.Node)
		}
		st.overrides[sess] = ov
		if ov.Version > st.version {
			st.version = ov.Version
		}
	}
	return st, nil
}

// Ring returns the state's placement ring.
func (s *State) Ring() *Ring { return s.ring }

// Version returns the current map version.
func (s *State) Version() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// Place returns the node owning the session: its override if one is
// installed (tombstones don't count), else its hash placement.
func (s *State) Place(session string) api.ClusterNode {
	s.mu.RLock()
	ov, ok := s.overrides[session]
	s.mu.RUnlock()
	if ok && !ov.Deleted {
		if n, found := s.node(ov.Node); found {
			return n
		}
	}
	return s.ring.Place(session)
}

// OverrideFor returns the session's live placement override, if one is
// installed; tombstones report false.
func (s *State) OverrideFor(session string) (api.ClusterOverride, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ov, ok := s.overrides[session]
	if !ok || ov.Deleted {
		return api.ClusterOverride{}, false
	}
	return ov, true
}

// Override installs (or replaces) the session's placement override and
// bumps the map version past both the current version and the
// override's (a tombstone's included, so a re-created session's next
// move beats its old removal). It returns the installed override — the
// caller gossips it by answering with the new map. from names the
// releasing node, finalSeq its sealed final WAL sequence and
// chainHead the hash-chain head over the sealed log (hex); all may be
// zero for operator pins. Unknown node names are an error.
func (s *State) Override(session, node, from string, finalSeq int64, chainHead string) (api.ClusterOverride, error) {
	if _, ok := s.node(node); !ok {
		return api.ClusterOverride{}, fmt.Errorf("cluster: unknown node %q", node)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	if old, ok := s.overrides[session]; ok && old.Version >= s.version {
		s.version = old.Version + 1
	}
	ov := api.ClusterOverride{Node: node, Version: s.version, From: from, FinalSeq: finalSeq, ChainHead: chainHead}
	s.overrides[session] = ov
	return ov, nil
}

// DropOverride retires the session's override (a deleted session's
// placement reverts to the ring) by replacing it with a versioned
// tombstone rather than deleting the key: Merge can then tell "removed
// at version V" from "never heard of it", so the removal gossips and a
// peer's stale override cannot re-infect this node on its next probe.
// Tombstones are retained for the process lifetime — one small entry
// per deleted moved session.
func (s *State) DropOverride(session string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.overrides[session]
	if !ok || old.Deleted {
		return
	}
	s.version++
	if old.Version >= s.version {
		s.version = old.Version + 1
	}
	s.overrides[session] = api.ClusterOverride{Deleted: true, Version: s.version}
}

// Merge folds a peer's map into this one: per session, the override
// with the higher version wins (a session's overrides are serialized
// by its successive owners, so the higher version is the newer fact —
// tombstones compete in the same order, which is how removals spread);
// the version rises to the maximum seen. It reports whether anything
// changed. Node sets are static in this release and must match; a
// mismatched node is an error.
func (s *State) Merge(m api.ClusterMap) (bool, error) {
	for _, n := range m.Nodes {
		ours, ok := s.node(n.Name)
		if !ok || ours.URL != n.URL {
			return false, fmt.Errorf("cluster: peer map names unknown node %q (%s)", n.Name, n.URL)
		}
	}
	for sess, ov := range m.Overrides {
		if _, ok := s.node(ov.Node); !ok && !ov.Deleted {
			return false, fmt.Errorf("cluster: peer override for %q names unknown node %q", sess, ov.Node)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	changed := false
	for sess, ov := range m.Overrides {
		if old, ok := s.overrides[sess]; !ok || ov.Version > old.Version {
			s.overrides[sess] = ov
			changed = true
		}
	}
	if m.Version > s.version {
		s.version = m.Version
		changed = true
	}
	return changed, nil
}

// Map snapshots the state as a wire map.
func (s *State) Map() api.ClusterMap {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m := api.ClusterMap{Version: s.version, Nodes: append([]api.ClusterNode(nil), s.ring.Nodes()...)}
	if len(s.overrides) > 0 {
		m.Overrides = make(map[string]api.ClusterOverride, len(s.overrides))
		for k, v := range s.overrides {
			m.Overrides[k] = v
		}
	}
	return m
}

// node looks a node up by name in the ring's node set.
func (s *State) node(name string) (api.ClusterNode, bool) {
	for _, n := range s.ring.Nodes() {
		if n.Name == name {
			return n, true
		}
	}
	return api.ClusterNode{}, false
}
