package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wfreach/internal/api"
)

func threeNodes() []api.ClusterNode {
	return []api.ClusterNode{
		{Name: "a", URL: "http://127.0.0.1:8081"},
		{Name: "b", URL: "http://127.0.0.1:8082"},
		{Name: "c", URL: "http://127.0.0.1:8083"},
	}
}

// Placement must be a pure function of the node set: two rings built
// from the same nodes (in any order) agree on every session, because
// servers and clients compute placement independently.
func TestRingDeterministic(t *testing.T) {
	r1, err := NewRing(threeNodes())
	if err != nil {
		t.Fatal(err)
	}
	reversed := threeNodes()
	reversed[0], reversed[2] = reversed[2], reversed[0]
	r2, err := NewRing(reversed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s := fmt.Sprintf("session-%d", i)
		if a, b := r1.Place(s).Name, r2.Place(s).Name; a != b {
			t.Fatalf("placement of %q differs across build orders: %s vs %s", s, a, b)
		}
	}
}

// Every node must receive a meaningful share of the sessions, and a
// double-weight node about double the share.
func TestRingSpreadAndWeight(t *testing.T) {
	nodes := threeNodes()
	nodes[1].Weight = 2
	r, err := NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 8000
	for i := 0; i < n; i++ {
		counts[r.Place(fmt.Sprintf("session-%d", i)).Name]++
	}
	// Expected shares: a=1/4, b=2/4, c=1/4. Allow generous slack —
	// 64 points per weight unit spreads within a few percent, the
	// test just guards against gross skew.
	for name, share := range map[string]float64{"a": 0.25, "b": 0.5, "c": 0.25} {
		got := float64(counts[name]) / n
		if got < share/2 || got > share*1.6 {
			t.Errorf("node %s got share %.3f, want about %.2f (counts %v)", name, got, share, counts)
		}
	}
}

func TestRingRejectsBadNodeSets(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewRing([]api.ClusterNode{{Name: "", URL: "http://x"}}); err == nil {
		t.Error("unnamed node accepted")
	}
	if _, err := NewRing([]api.ClusterNode{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate node name accepted")
	}
}

// Overrides beat hash placement, versions ratchet, and DropOverride
// reverts to the ring.
func TestStateOverridePrecedence(t *testing.T) {
	st, err := NewState(api.ClusterMap{Version: 3, Nodes: threeNodes()})
	if err != nil {
		t.Fatal(err)
	}
	home := st.Place("s1").Name
	away := "a"
	if home == "a" {
		away = "b"
	}
	ov, err := st.Override("s1", away, home, 42, "")
	if err != nil {
		t.Fatal(err)
	}
	if ov.Version <= 3 {
		t.Fatalf("override version %d did not rise past the map's", ov.Version)
	}
	if ov.From != home || ov.FinalSeq != 42 {
		t.Fatalf("override lost its drain record: %+v", ov)
	}
	if got := st.Place("s1").Name; got != away {
		t.Fatalf("after override placed on %s, want %s", got, away)
	}
	if got, ok := st.OverrideFor("s1"); !ok || got != ov {
		t.Fatalf("OverrideFor = %+v, %v; want %+v", got, ok, ov)
	}
	if _, err := st.Override("s1", "nope", "", 0, ""); err == nil {
		t.Error("override naming unknown node accepted")
	}
	v := st.Version()
	st.DropOverride("s1")
	if got := st.Place("s1").Name; got != home {
		t.Fatalf("after drop placed on %s, want ring placement %s", got, home)
	}
	if st.Version() <= v {
		t.Error("drop did not bump the version")
	}
	if _, ok := st.OverrideFor("s1"); ok {
		t.Error("OverrideFor reports a dropped override")
	}
	dropV := st.Version()
	st.DropOverride("s1") // no-op drop must not bump again
	if st.Version() != dropV {
		t.Errorf("idempotent drop changed version to %d, want %d", st.Version(), dropV)
	}
	// The drop leaves a versioned tombstone, so it propagates: a peer
	// still gossiping the retired override must not re-infect us...
	stale := api.ClusterMap{Version: ov.Version, Nodes: threeNodes(),
		Overrides: map[string]api.ClusterOverride{"s1": ov}}
	if _, err := st.Merge(stale); err != nil {
		t.Fatal(err)
	}
	if got := st.Place("s1").Name; got != home {
		t.Fatalf("stale peer override resurrected the drop: s1 on %s, want %s", got, home)
	}
	// ...and the wire map carries the tombstone to peers, beating their
	// stale live override.
	wire := st.Map()
	ts, ok := wire.Overrides["s1"]
	if !ok || !ts.Deleted || ts.Version <= ov.Version {
		t.Fatalf("wire map tombstone %+v (present %v), want deleted with version > %d", ts, ok, ov.Version)
	}
	peer, err := NewState(stale)
	if err != nil {
		t.Fatal(err)
	}
	if peer.Place("s1").Name != away {
		t.Fatal("peer fixture does not hold the stale override — test is vacuous")
	}
	if _, err := peer.Merge(wire); err != nil {
		t.Fatal(err)
	}
	if got := peer.Place("s1").Name; got != home {
		t.Fatalf("tombstone did not clear the peer's override: s1 on %s, want %s", got, home)
	}
}

// Merge adopts newer overrides, ignores older ones, and rejects maps
// describing a different cluster.
func TestStateMerge(t *testing.T) {
	st, err := NewState(api.ClusterMap{Version: 1, Nodes: threeNodes()})
	if err != nil {
		t.Fatal(err)
	}
	peer := api.ClusterMap{Version: 5, Nodes: threeNodes(),
		Overrides: map[string]api.ClusterOverride{"s1": {Node: "c", Version: 5}}}
	changed, err := st.Merge(peer)
	if err != nil || !changed {
		t.Fatalf("merge: changed=%v err=%v", changed, err)
	}
	if st.Version() != 5 || st.Place("s1").Name != "c" {
		t.Fatalf("after merge: version %d, s1 on %s", st.Version(), st.Place("s1").Name)
	}
	// Replaying the same map is a no-op.
	if changed, err = st.Merge(peer); err != nil || changed {
		t.Fatalf("replayed merge: changed=%v err=%v", changed, err)
	}
	// A stale override must not roll the session back.
	stale := api.ClusterMap{Version: 2, Nodes: threeNodes(),
		Overrides: map[string]api.ClusterOverride{"s1": {Node: "a", Version: 2}}}
	if _, err := st.Merge(stale); err != nil {
		t.Fatal(err)
	}
	if st.Place("s1").Name != "c" {
		t.Errorf("stale override won: s1 on %s, want c", st.Place("s1").Name)
	}
	// Foreign node sets are a configuration error, not mergeable.
	alien := api.ClusterMap{Version: 9, Nodes: []api.ClusterNode{{Name: "z", URL: "http://z"}}}
	if _, err := st.Merge(alien); err == nil {
		t.Error("merge of a foreign node set accepted")
	}
}

func TestLoadMap(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{
		"version": 1,
		"nodes": [
			{"name": "b", "url": "http://127.0.0.1:8082", "weight": 2},
			{"name": "a", "url": "http://127.0.0.1:8081", "follower": "http://127.0.0.1:9081"}
		]
	}`)
	m, err := LoadMap(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 2 || m.Nodes[0].Name != "a" || m.Nodes[1].Weight != 2 {
		t.Fatalf("loaded map %+v", m)
	}
	for name, body := range map[string]string{
		"unknown-field.json": `{"nodes": [{"name": "a", "url": "http://x"}], "primary": "a"}`,
		"no-nodes.json":      `{"version": 1}`,
		"bad-url.json":       `{"nodes": [{"name": "a", "url": "127.0.0.1:8081"}]}`,
		"dup.json":           `{"nodes": [{"name": "a", "url": "http://x"}, {"name": "a", "url": "http://y"}]}`,
		"bad-override.json":  `{"nodes": [{"name": "a", "url": "http://x"}], "overrides": {"s": {"node": "z"}}}`,
	} {
		if _, err := LoadMap(write(name, body)); err == nil {
			t.Errorf("%s accepted", name)
		} else if !strings.Contains(err.Error(), "cluster:") {
			t.Errorf("%s: error %v lacks package prefix", name, err)
		}
	}
}
