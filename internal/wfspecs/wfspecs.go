// Package wfspecs provides the workflow specifications used throughout
// the paper: the running example of Figure 2, the lower-bound grammars
// of Figures 6 and 12, the synthetic family of Figure 13, and a
// reconstruction of the BioAID workflow evaluated in Section 7.2.
package wfspecs

import (
	"fmt"
	"math/rand"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// RunningExample returns the specification of Figure 2: a loop L, a
// fork F, and a linear recursion between A and C.
//
//	g0: s0 → L → t0
//	h1 (L):  s1 → F → t1
//	h2 (F):  s2 → A → t2
//	h3 (A):  s3 → B → C → t3
//	h4 (A):  s4 → t4
//	h5 (B):  s5 → t5
//	h6 (C):  s6 → A → t6
func RunningExample() *spec.Spec {
	return spec.NewBuilder().
		Loop("L").Fork("F").Composite("A", "B", "C").
		Start("g0", spec.G([]string{"s0", "L", "t0"},
			[2]string{"s0", "L"}, [2]string{"L", "t0"})).
		Implement("L", "h1", spec.G([]string{"s1", "F", "t1"},
			[2]string{"s1", "F"}, [2]string{"F", "t1"})).
		Implement("F", "h2", spec.G([]string{"s2", "A", "t2"},
			[2]string{"s2", "A"}, [2]string{"A", "t2"})).
		Implement("A", "h3", spec.G([]string{"s3", "B", "C", "t3"},
			[2]string{"s3", "B"}, [2]string{"B", "C"}, [2]string{"C", "t3"})).
		Implement("A", "h4", spec.G([]string{"s4", "t4"},
			[2]string{"s4", "t4"})).
		Implement("B", "h5", spec.G([]string{"s5", "t5"},
			[2]string{"s5", "t5"})).
		Implement("C", "h6", spec.G([]string{"s6", "A", "t6"},
			[2]string{"s6", "A"}, [2]string{"A", "t6"})).
		MustBuild()
}

// Fig6 returns the grammar of Figure 6, for which Theorem 1 proves
// that any dynamic labeling scheme needs Ω(n)-bit labels: h1 has two
// parallel recursive vertices, with the differential vertex a reaching
// exactly one of them.
//
//	g0: s0 → A → t0
//	h1 (A): s1 → a → A₁ → t1, s1 → A₂ → t1
//	h2 (A): s2 → t2
func Fig6() *spec.Spec {
	h1 := spec.GIdx([]string{"s1", "a", "A", "A", "t1"},
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 4}, [2]int{0, 3}, [2]int{3, 4})
	return spec.NewBuilder().
		Composite("A").
		Start("g0", spec.G([]string{"s0", "A", "t0"},
			[2]string{"s0", "A"}, [2]string{"A", "t0"})).
		Implement("A", "h1", h1).
		Implement("A", "h2", spec.G([]string{"s2", "t2"}, [2]string{"s2", "t2"})).
		MustBuild()
}

// Fig12 returns the grammar of Figure 12 (Example 15): nonlinear
// series recursion whose runs are simple paths, so a compact
// execution-based scheme exists despite the nonlinearity.
//
//	g0: s0 → A → t0
//	h1 (A): s1 → A₁ → A₂ → t1
//	h2 (A): s2 → t2
func Fig12() *spec.Spec {
	h1 := spec.GIdx([]string{"s1", "A", "A", "t1"},
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	return spec.NewBuilder().
		Composite("A").
		Start("g0", spec.G([]string{"s0", "A", "t0"},
			[2]string{"s0", "A"}, [2]string{"A", "t0"})).
		Implement("A", "h1", h1).
		Implement("A", "h2", spec.G([]string{"s2", "t2"}, [2]string{"s2", "t2"})).
		MustBuild()
}

// SyntheticParams configures the Figure 13 synthetic family.
type SyntheticParams struct {
	// SubSize is the number of vertices of every sub-workflow
	// (including its terminals and its one composite vertex);
	// Section 7.3 varies it from 10 to 160. Minimum 3.
	SubSize int
	// Depth is the nesting depth of sub-workflows (Section 7.3 varies
	// it from 5 to 25). Minimum 4: the chain always ends with the loop
	// L, the fork F and the recursive module R of Figure 13.
	Depth int
	// RecModules is the number of R modules in the recursive
	// implementation h′d: 1 gives a linear recursive workflow, 2 the
	// nonlinear one of Figure 19. Minimum 1.
	RecModules int
	// Seed drives the random two-terminal topology of each
	// sub-workflow.
	Seed int64
}

// Synthetic builds a member of the Figure 13 family: a chain of nested
// random two-terminal sub-workflows g0 → h1 → … ending with one loop
// module L, one fork module F and one recursive module R whose
// recursive implementation h′d contains RecModules R vertices; R also
// has a terminal implementation hd so runs terminate.
func Synthetic(p SyntheticParams) *spec.Spec {
	if p.SubSize < 3 {
		p.SubSize = 3
	}
	if p.Depth < 4 {
		p.Depth = 4
	}
	if p.RecModules < 1 {
		p.RecModules = 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := spec.NewBuilder()

	// Module names along the chain: plain M1..Mk, then L, F, R.
	modules := make([]string, p.Depth)
	for i := 0; i < p.Depth-3; i++ {
		modules[i] = fmt.Sprintf("M%d", i+1)
	}
	modules[p.Depth-3] = "L"
	modules[p.Depth-2] = "F"
	modules[p.Depth-1] = "R"
	for _, m := range modules {
		switch m {
		case "L":
			b.Loop(m)
		case "F":
			b.Fork(m)
		default:
			b.Composite(m)
		}
	}

	// subGraph builds a random two-terminal graph of SubSize vertices
	// whose interior contains the given composite vertices at random
	// positions; lvl makes atomic names unique per graph.
	subGraph := func(lvl string, composites ...string) *graph.Graph {
		n := p.SubSize
		if n < len(composites)+2 {
			n = len(composites) + 2
		}
		names := make([]string, n)
		names[0] = "s" + lvl
		names[n-1] = "t" + lvl
		for i := 1; i < n-1; i++ {
			names[i] = fmt.Sprintf("a%s_%d", lvl, i)
		}
		// Place composites at distinct interior positions.
		perm := rng.Perm(n - 2)
		for i, c := range composites {
			names[1+perm[i]] = c
		}
		return graph.RandomTwoTerminal(rng, n, 0.4, names)
	}

	b.Start("g0", subGraph("0", modules[0]))
	for i := 0; i < p.Depth-1; i++ {
		b.Implement(modules[i], fmt.Sprintf("h%d", i+1), subGraph(fmt.Sprintf("%d", i+1), modules[i+1]))
	}
	// R's implementations: the recursive body h′d with RecModules R
	// vertices, and the terminal body hd.
	recs := make([]string, p.RecModules)
	for i := range recs {
		recs[i] = "R"
	}
	rec := subGraphDup(rng, p.SubSize, fmt.Sprintf("%dr", p.Depth), recs)
	b.Implement("R", fmt.Sprintf("h%dr", p.Depth), rec)
	b.Implement("R", fmt.Sprintf("h%d", p.Depth), subGraph(fmt.Sprintf("%d", p.Depth)))
	return b.MustBuild()
}

// subGraphDup is like subGraph but allows the same composite name to
// occur several times (the nonlinear h′d of Figure 19 has two R
// modules).
func subGraphDup(rng *rand.Rand, size int, lvl string, composites []string) *graph.Graph {
	n := size
	if n < len(composites)+2 {
		n = len(composites) + 2
	}
	names := make([]string, n)
	names[0] = "s" + lvl
	names[n-1] = "t" + lvl
	for i := 1; i < n-1; i++ {
		names[i] = fmt.Sprintf("a%s_%d", lvl, i)
	}
	perm := rng.Perm(n - 2)
	for i, c := range composites {
		names[1+perm[i]] = c
	}
	return graph.RandomTwoTerminal(rng, n, 0.4, names)
}

// BioAID returns a reconstruction of the BioAID workflow from the
// myExperiment repository, matching every statistic Section 7.2
// reports: 11 sub-workflows with an average size of ~10.5 vertices,
// nesting depth 2, two loop modules, four fork modules and one linear
// recursion of length 2 (A ↔ C). The original workflow is not
// available offline; labeling behavior depends only on these
// structural statistics (see DESIGN.md).
func BioAID() *spec.Spec {
	return bioAID(true)
}

// BioAIDNonRecursive returns the de-recursed variant used for the
// DRL-vs-SKL comparison of Section 7.4, where "the linear recursion in
// this workflow can be converted to a loop which performs similar
// computations": A and C are replaced by a loop module AL whose body
// is the unrolled A→C round. Its global inlined specification has
// exactly 106 vertices, reproducing Table 2's 5565-bit SKL skeleton.
func BioAIDNonRecursive() *spec.Spec {
	return bioAID(false)
}

func bioAID(recursive bool) *spec.Spec {
	rng := rand.New(rand.NewSource(77))
	b := spec.NewBuilder().
		Loop("L1", "L2").
		Fork("F1", "F2", "F3", "F4").
		Composite("P1")

	// body builds a random two-terminal graph with the given total
	// size, terminals s<lvl>/t<lvl>, and composites placed inside.
	body := func(lvl string, size int, composites ...string) *graph.Graph {
		names := make([]string, size)
		names[0] = "s" + lvl
		names[size-1] = "t" + lvl
		for i := 1; i < size-1; i++ {
			names[i] = fmt.Sprintf("m%s_%d", lvl, i)
		}
		perm := rng.Perm(size - 2)
		for i, c := range composites {
			names[1+perm[i]] = c
		}
		return graph.RandomTwoTerminal(rng, size, 0.35, names)
	}

	if recursive {
		b.Composite("A", "C")
		// 11 graphs, sizes 12,11,11,10,10,9,10,11,11,10,11 = 116 total,
		// average 10.5 (Section 7.2).
		b.Start("g0", body("0", 12, "L1", "F1", "F2", "A", "P1"))
		b.Implement("L1", "h1", body("1", 11, "F3"))
		b.Implement("F1", "h2", body("2", 11, "L2"))
		b.Implement("F2", "h3", body("3", 10, "F4"))
		b.Implement("A", "h4", body("4", 10, "C")) // recursive alternative
		b.Implement("A", "h5", body("5", 9))       // base alternative
		b.Implement("C", "h6", body("6", 10, "A")) // closes the A↔C recursion
		b.Implement("L2", "h7", body("7", 11))
		b.Implement("F3", "h8", body("8", 11))
		b.Implement("F4", "h9", body("9", 10))
		b.Implement("P1", "h10", body("10", 11))
		return b.MustBuild()
	}

	// De-recursed: A ↔ C becomes the loop AL with the unrolled body
	// (27 atomic vertices: the 9+9+9 atoms of h4, h6 and h5), sized so
	// the global inlined specification has exactly
	// 7+21+21+19+11+27 = 106 vertices.
	b.Loop("AL")
	b.Start("g0", body("0", 12, "L1", "F1", "F2", "AL", "P1"))
	b.Implement("L1", "h1", body("1", 11, "F3"))
	b.Implement("F1", "h2", body("2", 11, "L2"))
	b.Implement("F2", "h3", body("3", 10, "F4"))
	b.Implement("AL", "h4", body("4", 27))
	b.Implement("L2", "h7", body("7", 11))
	b.Implement("F3", "h8", body("8", 11))
	b.Implement("F4", "h9", body("9", 10))
	b.Implement("P1", "h10", body("10", 11))
	return b.MustBuild()
}
