package wfspecs_test

import (
	"testing"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func TestRunningExampleStructure(t *testing.T) {
	s := wfspecs.RunningExample()
	g := spec.MustCompile(s)
	// Figure 2's exact shape: h3 = s3 → B → C → t3.
	h3 := s.Implementations("A")[0]
	gg := s.Graph(h3).G
	if gg.NumVertices() != 4 {
		t.Fatalf("h3 size = %d", gg.NumVertices())
	}
	b, _ := s.ResolveName(h3, "B")
	c, _ := s.ResolveName(h3, "C")
	if !gg.HasEdge(b, c) {
		t.Fatal("h3 must chain B before C")
	}
	// The A↔C recursion is mutual.
	if !g.Induces("A", "C") || !g.Induces("C", "A") {
		t.Fatal("A↔C recursion missing")
	}
}

func TestFig6Structure(t *testing.T) {
	s := wfspecs.Fig6()
	h1 := s.Implementations("A")[0]
	gg := s.Graph(h1).G
	// h1 = {s1, a, A, A, t1}: the differential vertex a reaches exactly
	// one of the two recursive vertices (the crux of Theorem 1's proof).
	if gg.NumVertices() != 5 {
		t.Fatalf("h1 size = %d", gg.NumVertices())
	}
	var aV graph.VertexID = graph.None
	var recs []graph.VertexID
	for v := 0; v < gg.NumVertices(); v++ {
		switch gg.Name(graph.VertexID(v)) {
		case "a":
			aV = graph.VertexID(v)
		case "A":
			recs = append(recs, graph.VertexID(v))
		}
	}
	if aV == graph.None || len(recs) != 2 {
		t.Fatal("h1 must have vertex a and two A vertices")
	}
	reached := 0
	for _, r := range recs {
		if gg.Reaches(aV, r) {
			reached++
		}
	}
	if reached != 1 {
		t.Fatalf("a reaches %d of the A vertices, want exactly 1", reached)
	}
	// The two A's are parallel (mutually unreachable).
	if gg.Reaches(recs[0], recs[1]) || gg.Reaches(recs[1], recs[0]) {
		t.Fatal("the two recursive vertices must be parallel")
	}
}

func TestFig12Structure(t *testing.T) {
	s := wfspecs.Fig12()
	h1 := s.Implementations("A")[0]
	gg := s.Graph(h1).G
	// h1 = s1 → A → A → t1 in series.
	if gg.NumVertices() != 4 || gg.NumEdges() != 3 {
		t.Fatalf("h1 shape wrong: %v", gg)
	}
	if !gg.Reaches(1, 2) {
		t.Fatal("the two A vertices must be in series")
	}
}

func TestSyntheticMinRunGrowsWithDepth(t *testing.T) {
	prev := 0
	for _, depth := range []int{4, 8, 12} {
		g := spec.MustCompile(wfspecs.Synthetic(
			wfspecs.SyntheticParams{SubSize: 8, Depth: depth, RecModules: 1, Seed: 1}))
		mrs := g.MinRunSize()
		if mrs <= prev {
			t.Fatalf("depth %d: min run %d did not grow past %d", depth, mrs, prev)
		}
		prev = mrs
	}
}

func TestSyntheticParameterClamping(t *testing.T) {
	s := wfspecs.Synthetic(wfspecs.SyntheticParams{SubSize: 1, Depth: 1, RecModules: 0, Seed: 2})
	g := spec.MustCompile(s)
	// Clamped to the minimal sensible family member; still valid and
	// linear recursive.
	if !g.IsLinearRecursive() || g.Class() != spec.ClassLinear {
		t.Fatalf("clamped synthetic class = %v", g.Class())
	}
}

func TestBioAIDNonRecursiveIsDerecursedBioAID(t *testing.T) {
	rec := wfspecs.BioAID()
	non := wfspecs.BioAIDNonRecursive()
	// Same loop/fork module census except A/C → AL.
	if rec.Kind("A") != spec.Plain || non.Kind("AL") != spec.Loop {
		t.Fatal("de-recursion should turn A into the loop AL")
	}
	if non.Kind("A") != spec.Atomic { // undeclared => atomic, unused
		t.Skip("A unused in the non-recursive variant")
	}
}

func TestRandomSpecAlwaysValid(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := wfspecs.RandomParams{
			Plain:        int(seed % 5),
			Loops:        int(seed % 3),
			Forks:        int((seed / 2) % 3),
			RecursionLen: int(seed % 5),
			NonlinearRec: seed%7 == 0,
			MaxGraphSize: 4 + int(seed%6),
			Seed:         seed,
		}
		s := wfspecs.RandomSpec(p) // MustBuild inside: panics if invalid
		g, err := spec.Compile(s)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if p.RecursionLen == 0 && g.IsRecursive() {
			t.Fatalf("seed %d: unexpected recursion", seed)
		}
		if p.RecursionLen > 0 && !p.NonlinearRec && !g.IsLinearRecursive() {
			t.Fatalf("seed %d: expected linear, got %v", seed, g.Class())
		}
		if p.RecursionLen > 0 && p.NonlinearRec && g.IsLinearRecursive() {
			t.Fatalf("seed %d: expected nonlinear", seed)
		}
		if g.MinRunSize() < 2 {
			t.Fatalf("seed %d: min run %d", seed, g.MinRunSize())
		}
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	p := wfspecs.RandomParams{Plain: 3, Loops: 1, Forks: 1, RecursionLen: 2, MaxGraphSize: 6, Seed: 99}
	a, b := wfspecs.RandomSpec(p), wfspecs.RandomSpec(p)
	if a.String() != b.String() {
		t.Fatal("RandomSpec not deterministic by seed")
	}
}

func TestRandomSpecRecursionCycleLength(t *testing.T) {
	g := spec.MustCompile(wfspecs.RandomSpec(wfspecs.RandomParams{
		RecursionLen: 3, MaxGraphSize: 5, Seed: 4,
	}))
	// R0 ↦* R2 and back: the full cycle is live.
	if !g.Induces("R0", "R2") || !g.Induces("R2", "R0") {
		t.Fatal("recursion cycle broken")
	}
	if g.Class() != spec.ClassLinear {
		t.Fatalf("class = %v", g.Class())
	}
}
