package wfspecs

import "wfreach/internal/spec"

// Agent returns the LLM-agent workflow grammar: the recursive
// tool-call shape of agentic workloads (FlowMind-style execute →
// summarize recursion), where an agent plans, fans a burst of
// parallel tool calls out (each call retried a random number of
// times), optionally delegates the task to a sub-agent, and
// summarizes — the adversarial combination of deep recursion, bursty
// fan-out and long-lived sessions that provenance systems meet in
// LLM-mediated pipelines.
//
//	g0:              s0 → Turns → t0
//	h_turn (Turns):  su → prompt → Agent → reply → tu          (loop: one turn each)
//	h_act  (Agent):  sa → act → ta                             (answer directly)
//	h_plan (Agent):  sp → plan → Calls → Sub → summarize → tp  (work)
//	h_call (Calls):  sc → Tool → tc      (fork: parallel tool-call burst)
//	h_tool (Tool):   st → invoke → tt    (loop: retries of one call)
//	h_sub  (Sub):    ss → Agent → ts     (delegate to a sub-agent; recursion)
//	h_skip (Sub):    sk → tk             (no delegation)
//
// The Turns loop is the long-lived-session axis: one run is a whole
// conversation, each loop copy a prompt → agent → reply turn, so runs
// grow without bound while delegation depth stays controlled. The
// recursion cycle Agent → Sub → Agent is linear — one recursive
// vertex per production, and none of the pumped modules sits on the
// cycle — so labels stay logarithmic no matter how deep the delegation
// goes (the paper's compact case), while fork copies of h_call model a
// burst of parallel tool calls and loop copies of h_tool model retries
// of one call. gen.GenerateAgentTrace derives runs of this grammar
// with explicit turn, depth, burst and retry control.
func Agent() *spec.Spec {
	return spec.NewBuilder().
		Composite("Agent", "Sub").Loop("Turns", "Tool").Fork("Calls").
		Start("g0", spec.G([]string{"s0", "Turns", "t0"},
			[2]string{"s0", "Turns"}, [2]string{"Turns", "t0"})).
		Implement("Turns", "h_turn", spec.G([]string{"su", "prompt", "Agent", "reply", "tu"},
			[2]string{"su", "prompt"}, [2]string{"prompt", "Agent"},
			[2]string{"Agent", "reply"}, [2]string{"reply", "tu"})).
		Implement("Agent", "h_act", spec.G([]string{"sa", "act", "ta"},
			[2]string{"sa", "act"}, [2]string{"act", "ta"})).
		Implement("Agent", "h_plan", spec.G([]string{"sp", "plan", "Calls", "Sub", "summarize", "tp"},
			[2]string{"sp", "plan"}, [2]string{"plan", "Calls"},
			[2]string{"Calls", "Sub"}, [2]string{"Sub", "summarize"},
			[2]string{"summarize", "tp"})).
		Implement("Calls", "h_call", spec.G([]string{"sc", "Tool", "tc"},
			[2]string{"sc", "Tool"}, [2]string{"Tool", "tc"})).
		Implement("Tool", "h_tool", spec.G([]string{"st", "invoke", "tt"},
			[2]string{"st", "invoke"}, [2]string{"invoke", "tt"})).
		Implement("Sub", "h_sub", spec.G([]string{"ss", "Agent", "ts"},
			[2]string{"ss", "Agent"}, [2]string{"Agent", "ts"})).
		Implement("Sub", "h_skip", spec.G([]string{"sk", "tk"},
			[2]string{"sk", "tk"})).
		MustBuild()
}
