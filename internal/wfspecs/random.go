package wfspecs

import (
	"fmt"
	"math/rand"

	"wfreach/internal/graph"
	"wfreach/internal/spec"
)

// RandomParams configures RandomSpec, the randomized well-formed
// specification generator used by the property tests: it covers the
// whole model — plain composites with alternative implementations,
// loops, forks, and an optional recursion cycle of configurable length
// and linearity.
type RandomParams struct {
	// Plain, Loops, Forks are the number of modules of each kind
	// (beyond the recursion cycle).
	Plain, Loops, Forks int
	// RecursionLen is the length of the recursion cycle R1→R2→…→R1
	// (0 disables recursion; 1 gives direct self-recursion).
	RecursionLen int
	// NonlinearRec duplicates the recursive vertex in one production,
	// making the grammar nonlinear (series or parallel depending on
	// the random topology).
	NonlinearRec bool
	// MaxGraphSize bounds each graph's vertex count (minimum 4 is
	// enforced so interior composites fit).
	MaxGraphSize int
	// Seed drives all choices.
	Seed int64
}

// RandomSpec builds a random well-formed specification. Modules are
// arranged in a reference DAG (each implementation only mentions
// strictly later modules) so the only cycles in the "induces" relation
// are the requested recursion cycle; with NonlinearRec false the
// result is therefore linear recursive by construction.
func RandomSpec(p RandomParams) *spec.Spec {
	if p.MaxGraphSize < 4 {
		p.MaxGraphSize = 4
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := spec.NewBuilder()

	// Module order: plain/loops/forks shuffled, recursion cycle last.
	type module struct {
		name string
		kind spec.Kind
	}
	var mods []module
	for i := 0; i < p.Plain; i++ {
		mods = append(mods, module{fmt.Sprintf("P%d", i), spec.Plain})
	}
	for i := 0; i < p.Loops; i++ {
		mods = append(mods, module{fmt.Sprintf("L%d", i), spec.Loop})
	}
	for i := 0; i < p.Forks; i++ {
		mods = append(mods, module{fmt.Sprintf("F%d", i), spec.Fork})
	}
	rng.Shuffle(len(mods), func(i, j int) { mods[i], mods[j] = mods[j], mods[i] })
	for _, m := range mods {
		switch m.kind {
		case spec.Loop:
			b.Loop(m.name)
		case spec.Fork:
			b.Fork(m.name)
		default:
			b.Composite(m.name)
		}
	}
	var recs []string
	for i := 0; i < p.RecursionLen; i++ {
		recs = append(recs, fmt.Sprintf("R%d", i))
	}
	b.Composite(recs...)

	gid := 0
	// body builds a random two-terminal graph embedding the given
	// composite names (possibly with repeats) at interior positions.
	body := func(composites ...string) *graph.Graph {
		gid++
		slack := p.MaxGraphSize - 2 - len(composites)
		n := 2 + len(composites)
		if slack > 0 {
			n += rng.Intn(slack + 1)
		}
		names := make([]string, n)
		names[0] = fmt.Sprintf("s%d", gid)
		names[n-1] = fmt.Sprintf("t%d", gid)
		for i := 1; i < n-1; i++ {
			names[i] = fmt.Sprintf("a%d_%d", gid, i)
		}
		perm := rng.Perm(n - 2)
		for i, c := range composites {
			names[1+perm[i]] = c
		}
		return graph.RandomTwoTerminal(rng, n, 0.3+rng.Float64()*0.4, names)
	}

	// laterMods picks up to k modules with index strictly greater than
	// from (so the reference relation is a DAG on non-recursive names);
	// modules may also reference the recursion entry R0.
	laterMods := func(from, k int) []string {
		var pool []string
		for i := from + 1; i < len(mods); i++ {
			pool = append(pool, mods[i].name)
		}
		if len(recs) > 0 {
			pool = append(pool, recs[0])
		}
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if k > len(pool) {
			k = len(pool)
		}
		return pool[:k]
	}

	// Start graph references a few first-tier modules.
	firstTier := 1
	if len(mods) > 2 {
		firstTier += rng.Intn(2)
	}
	b.Start("g0", body(laterMods(-1, firstTier)...))

	// Implementations: each module references later modules; plain
	// modules may get a second, alternative implementation.
	for i, m := range mods {
		children := laterMods(i, rng.Intn(3))
		b.Implement(m.name, fmt.Sprintf("h%s", m.name), body(children...))
		if m.kind == spec.Plain && rng.Intn(3) == 0 {
			b.Implement(m.name, fmt.Sprintf("h%s_alt", m.name), body(laterMods(i, rng.Intn(2))...))
		}
	}

	// Recursion cycle: R_i's implementation contains R_{i+1 mod len};
	// one member gets an atomic base implementation so the cycle
	// terminates. With NonlinearRec, the closing production carries the
	// recursive vertex twice.
	for i, r := range recs {
		next := recs[(i+1)%len(recs)]
		if p.NonlinearRec && i == len(recs)-1 {
			b.Implement(r, fmt.Sprintf("h%s", r), body(next, next))
		} else {
			b.Implement(r, fmt.Sprintf("h%s", r), body(next))
		}
		b.Implement(r, fmt.Sprintf("h%s_base", r), body())
	}

	return b.MustBuild()
}
