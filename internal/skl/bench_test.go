package skl_test

import (
	"math/rand"
	"testing"

	"wfreach/internal/gen"
	"wfreach/internal/skeleton"
	"wfreach/internal/skl"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func BenchmarkBuild(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 8192, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skl.Build(r, skeleton.TCL); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(r.Size()), "ns/vertex")
}

func BenchmarkSKLPi(b *testing.B) {
	g := spec.MustCompile(wfspecs.BioAIDNonRecursive())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 8192, Seed: 1})
	s, err := skl.Build(r, skeleton.TCL)
	if err != nil {
		b.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(2))
	type pair struct{ a, b *skl.Label }
	pairs := make([]pair, 1024)
	for i := range pairs {
		pairs[i] = pair{
			s.MustLabel(live[rng.Intn(len(live))]),
			s.MustLabel(live[rng.Intn(len(live))]),
		}
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != s.Pi(p.a, p.b)
	}
	_ = sink
}
