// Package skl implements SKL, the state-of-the-art *static* baseline
// the paper compares against in Section 7.4: the skeleton-based
// labeling scheme of Bao, Davidson, Khanna and Roy (SIGMOD 2010,
// reference [6]). As Section 7.4 describes it, SKL
//
//   - is static: it takes the entire completed run as input;
//   - supports only non-recursive workflows (loops and forks);
//   - entails skeleton labels over a *global* specification graph in
//     which all composite modules are recursively replaced with their
//     sub-workflows;
//   - assigns each run vertex a label of three indexes plus one
//     skeleton pointer — 3·log n + O(1) bits — and answers queries in
//     constant time.
//
// The original construction is reproduced in behavior rather than
// verbatim (see DESIGN.md): the three indexes are the DFS interval
// [begin, end] of the vertex's parse-tree context (the interval-based
// tree labeling of [22] that Section 7.4 attributes to SKL) plus the
// packed level-indexed path used to type the least common ancestor and
// to order loop copies; the skeleton pointer addresses the global
// inlined specification. Correctness is asserted against ground truth
// in the package tests.
package skl

import (
	"fmt"

	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/spec"
)

// Label is an SKL reachability label: three indexes — the vertex's
// DFS interval [Begin, End] over the run's parse tree with one leaf
// per run vertex (the interval-based scheme of [22] applied to an
// O(n)-node tree, hence two indexes of ⌈log 2n⌉ bits each) and the
// packed level-indexed Path of its context — plus the skeleton pointer
// Global into the global specification graph. Path and Types are
// materialized as slices for convenience; their measured size is the
// packed bit count (constant depth × per-level width), see
// Scheme.BitLen.
type Label struct {
	Begin, End int32
	Path       []int32          // child indexes from below the root to the context
	Types      []label.NodeType // node types from the root (Types[0]) down to the context
	Global     graph.VertexID   // vertex in the global specification graph
}

// Scheme holds the per-run SKL index: the interval layout, the
// per-level path widths, and the global skeleton.
type Scheme struct {
	g      *spec.Grammar
	inline *spec.Inline
	global skeleton.GraphScheme
	labels map[graph.VertexID]*Label

	intervalBits int
	ptrBits      int
	widths       []int // per tree depth: bits for a path component
}

// node is SKL's private parse-tree node (no R nodes can occur: the
// grammar is non-recursive).
type node struct {
	kind     label.NodeType
	index    int32
	parent   *node
	children []*node
	region   *spec.InlineRegion // instances only
	gid      spec.GraphID
	begin    int32
	end      int32
	depth    int
	path     []int32
	// leafB/leafE are the per-member leaf intervals (instances only;
	// -1 for composite slots).
	leafB, leafE []int32
}

// Build constructs SKL labels for a completed run. It fails on
// recursive grammars (SKL's limitation (2)) and on incomplete runs
// (limitation (1): it is a static scheme).
func Build(r *run.Run, kind skeleton.Kind) (*Scheme, error) {
	if !r.Complete() {
		return nil, fmt.Errorf("skl: static scheme requires a completed run")
	}
	in, err := r.Grammar.InlineAll()
	if err != nil {
		return nil, fmt.Errorf("skl: %w", err)
	}
	s := &Scheme{
		g:      r.Grammar,
		inline: in,
		global: skeleton.NewGraphScheme(kind, in.Graph),
		labels: make(map[graph.VertexID]*Label),
	}
	s.ptrBits = bitsFor(in.Graph.NumVertices())

	// Rebuild the parse tree from the recorded derivation.
	sp := r.Grammar.Spec()
	g0 := sp.Graph(spec.StartGraph)
	root := &node{kind: label.N, region: in.Root, gid: spec.StartGraph, depth: 0}
	type member struct {
		n  *node
		sv graph.VertexID
	}
	ctx := make(map[graph.VertexID]member) // run vertex (incl. composites) -> context
	for v := 0; v < g0.G.NumVertices(); v++ {
		ctx[r.StartIDs[v]] = member{root, graph.VertexID(v)}
	}
	nodes := []*node{root}
	addChild := func(p *node, kind label.NodeType, index int32) *node {
		c := &node{kind: kind, index: index, parent: p, depth: p.depth + 1}
		c.path = append(append([]int32(nil), p.path...), index)
		p.children = append(p.children, c)
		nodes = append(nodes, c)
		return c
	}
	altOf := func(name string, impl spec.GraphID) int {
		for i, id := range sp.Implementations(name) {
			if id == impl {
				return i
			}
		}
		return -1
	}
	for i := range r.Steps {
		st := &r.Steps[i]
		m, ok := ctx[st.Target]
		if !ok {
			return nil, fmt.Errorf("skl: step %d targets unknown vertex", i)
		}
		y, cu := m.n, m.sv
		name := sp.Graph(y.gid).G.Name(cu)
		alt := altOf(name, st.Impl)
		if alt < 0 {
			return nil, fmt.Errorf("skl: step %d has foreign implementation", i)
		}
		region := y.region.Slots[cu][alt]
		kindOf := sp.Kind(name)
		parent := y
		if kindOf == spec.Loop || kindOf == spec.Fork {
			t := label.L
			if kindOf == spec.Fork {
				t = label.F
			}
			parent = addChild(y, t, int32(cu)+1)
		}
		for c := 0; c < st.Copies; c++ {
			idx := int32(cu) + 1
			if parent != y {
				idx = int32(c) + 1
			}
			x := addChild(parent, label.N, idx)
			x.region = region
			x.gid = st.Impl
			for v, id := range st.IDs[c] {
				ctx[id] = member{x, graph.VertexID(v)}
			}
		}
	}

	// DFS interval layout with one leaf per run vertex (atomic spec
	// vertices of each instance), plus per-level width collection.
	var ctr int32
	maxAt := make(map[int]int32)
	var dfs func(n *node)
	dfs = func(n *node) {
		n.begin = ctr
		ctr++
		if n.depth > 0 && n.index > maxAt[n.depth-1] {
			maxAt[n.depth-1] = n.index
		}
		if n.kind == label.N {
			gg := sp.Graph(n.gid).G
			n.leafB = make([]int32, gg.NumVertices())
			n.leafE = make([]int32, gg.NumVertices())
			for v := 0; v < gg.NumVertices(); v++ {
				if sp.Kind(gg.Name(graph.VertexID(v))).Composite() {
					n.leafB[v], n.leafE[v] = -1, -1
					continue
				}
				n.leafB[v] = ctr
				ctr++
				n.leafE[v] = ctr
				ctr++
			}
		}
		for _, c := range n.children {
			dfs(c)
		}
		n.end = ctr
		ctr++
	}
	dfs(root)
	s.intervalBits = bitsFor(int(ctr))
	maxDepth := 0
	for d := range maxAt {
		if d+1 > maxDepth {
			maxDepth = d + 1
		}
	}
	s.widths = make([]int, maxDepth)
	for d := 0; d < maxDepth; d++ {
		s.widths[d] = bitsFor(int(maxAt[d]) + 1)
	}

	// Issue per-vertex labels (only live run vertices have contexts in
	// instance nodes with materialized regions).
	for v, m := range ctx {
		if r.Graph.IsTombstone(v) {
			continue
		}
		x := m.n
		types := make([]label.NodeType, 0, x.depth+1)
		for n := x; n != nil; n = n.parent {
			types = append(types, n.kind)
		}
		// Reverse to root-first order.
		for i, j := 0, len(types)-1; i < j; i, j = i+1, j-1 {
			types[i], types[j] = types[j], types[i]
		}
		global := x.region.GlobalOf[m.sv]
		if global == graph.None {
			return nil, fmt.Errorf("skl: vertex %d maps to a composite global slot", v)
		}
		s.labels[v] = &Label{
			Begin: x.leafB[m.sv], End: x.leafE[m.sv],
			Path: x.path, Types: types,
			Global: global,
		}
	}
	return s, nil
}

// Label returns the SKL label of a run vertex.
func (s *Scheme) Label(v graph.VertexID) (*Label, bool) {
	l, ok := s.labels[v]
	return l, ok
}

// MustLabel panics when v has no label.
func (s *Scheme) MustLabel(v graph.VertexID) *Label {
	l, ok := s.labels[v]
	if !ok {
		panic(fmt.Sprintf("skl: vertex %d has no label", v))
	}
	return l
}

// Pi decides reachability from two labels plus the global skeleton.
// The context paths give the least common ancestor: same or nested
// contexts defer to the global specification; contexts diverging at a
// loop node compare DFS order (earlier copies precede later ones in
// the interval layout); fork copies never reach each other; contexts
// diverging at an instance are different slots, decided by the global
// skeleton.
func (s *Scheme) Pi(a, b *Label) bool {
	k := 0
	for k < len(a.Path) && k < len(b.Path) && a.Path[k] == b.Path[k] {
		k++
	}
	if k == len(a.Path) || k == len(b.Path) {
		// Same context, or one context is an ancestor of the other.
		return s.global.Reaches(a.Global, b.Global)
	}
	switch a.Types[k] {
	case label.L:
		return a.Begin < b.Begin
	case label.F:
		return false
	default:
		return s.global.Reaches(a.Global, b.Global)
	}
}

// Reach answers reachability between two run vertices.
func (s *Scheme) Reach(v, w graph.VertexID) bool {
	return s.Pi(s.MustLabel(v), s.MustLabel(w))
}

// BitLen measures a label: two interval indexes, the packed path, the
// 2-bit-per-level type mask, and the skeleton pointer — the
// 3·log n_t + O(log n_G) accounting of Section 7.4.
func (s *Scheme) BitLen(l *Label) int {
	bits := 2*s.intervalBits + s.ptrBits + 2*len(l.Types)
	for d := range l.Path {
		bits += s.widths[d]
	}
	return bits
}

// SkeletonBits returns the global skeleton's storage (Table 2's
// preprocessing space: 5565 bits for the BioAID global specification
// under TCL).
func (s *Scheme) SkeletonBits() int { return s.global.Bits() }

// GlobalSize returns the number of vertices of the global
// specification graph (106 for BioAID).
func (s *Scheme) GlobalSize() int { return s.inline.Graph.NumVertices() }

// LabelCount returns the number of labeled run vertices.
func (s *Scheme) LabelCount() int { return len(s.labels) }

func bitsFor(n int) int {
	b := 1
	for 1<<b < n {
		b++
	}
	return b
}
