package skl_test

import (
	"math"
	"math/rand"
	"testing"

	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/run"
	"wfreach/internal/skeleton"
	"wfreach/internal/skl"
	"wfreach/internal/spec"
	"wfreach/internal/wfspecs"
)

func nonRecursive(t *testing.T) *spec.Grammar {
	t.Helper()
	return spec.MustCompile(wfspecs.BioAIDNonRecursive())
}

func TestAllPairsAgainstGroundTruth(t *testing.T) {
	g := nonRecursive(t)
	for seed := int64(0); seed < 5; seed++ {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 150, Seed: seed})
		s, err := skl.Build(r, skeleton.TCL)
		if err != nil {
			t.Fatal(err)
		}
		live := r.Graph.LiveVertices()
		for _, v := range live {
			for _, w := range live {
				want := r.Graph.Reaches(v, w)
				if got := s.Reach(v, w); got != want {
					t.Fatalf("seed %d: SKL(%d→%d)=%v, want %v (%s→%s)",
						seed, v, w, got, want, r.NameOf(v), r.NameOf(w))
				}
			}
		}
	}
}

func TestWithBFSGlobalSkeleton(t *testing.T) {
	g := nonRecursive(t)
	r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: 9})
	s, err := skl.Build(r, skeleton.BFS)
	if err != nil {
		t.Fatal(err)
	}
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 3000; k++ {
		v := live[rng.Intn(len(live))]
		w := live[rng.Intn(len(live))]
		if got, want := s.Reach(v, w), r.Graph.Reaches(v, w); got != want {
			t.Fatalf("SKL(BFS)(%d→%d)=%v, want %v", v, w, got, want)
		}
	}
	if s.SkeletonBits() != 0 {
		t.Fatal("BFS skeleton stores nothing")
	}
}

func TestLoopForkHeavySpec(t *testing.T) {
	// A dedicated spec exercising nested loop-inside-fork and
	// fork-inside-loop, the cases where a naive global-skeleton-only
	// scheme breaks (copy order vs copy isolation).
	s := spec.NewBuilder().
		Loop("LO").Fork("FO").
		Start("g0", spec.G([]string{"s0", "LO", "t0"},
			[2]string{"s0", "LO"}, [2]string{"LO", "t0"})).
		Implement("LO", "h1", spec.G([]string{"s1", "FO", "t1"},
			[2]string{"s1", "FO"}, [2]string{"FO", "t1"})).
		Implement("FO", "h2", spec.G([]string{"s2", "x", "t2"},
			[2]string{"s2", "x"}, [2]string{"x", "t2"})).
		MustBuild()
	g := spec.MustCompile(s)
	for seed := int64(0); seed < 6; seed++ {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 120, Seed: seed})
		sc, err := skl.Build(r, skeleton.TCL)
		if err != nil {
			t.Fatal(err)
		}
		live := r.Graph.LiveVertices()
		for _, v := range live {
			for _, w := range live {
				if got, want := sc.Reach(v, w), r.Graph.Reaches(v, w); got != want {
					t.Fatalf("seed %d: (%d→%d)=%v, want %v", seed, v, w, got, want)
				}
			}
		}
	}
}

func TestTable2GlobalSkeleton(t *testing.T) {
	g := nonRecursive(t)
	r := gen.MustGenerate(g, gen.Options{TargetSize: 50, Seed: 0})
	s, err := skl.Build(r, skeleton.TCL)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: the global specification graph has 106 vertices and its
	// triangular TCL skeleton takes exactly 5565 bits.
	if s.GlobalSize() != 106 {
		t.Fatalf("global size = %d, want 106", s.GlobalSize())
	}
	if s.SkeletonBits() != 5565 {
		t.Fatalf("skeleton bits = %d, want 5565", s.SkeletonBits())
	}
}

func TestLabelLengthIsThreeLogN(t *testing.T) {
	g := nonRecursive(t)
	r := gen.MustGenerate(g, gen.Options{TargetSize: 4000, Seed: 3})
	s, err := skl.Build(r, skeleton.TCL)
	if err != nil {
		t.Fatal(err)
	}
	maxBits := 0
	for _, v := range r.Graph.LiveVertices() {
		if b := s.BitLen(s.MustLabel(v)); b > maxBits {
			maxBits = b
		}
	}
	n := float64(r.Size())
	// Upper bound from Section 7.4: 3·log n_t + O(log n_G); allow a
	// generous constant. Also require it to be at least 2·log n (the
	// two interval indexes alone), confirming the 3-index shape.
	lo := 2 * math.Log2(n) * 0.5
	hi := 3*math.Log2(n) + 80
	if float64(maxBits) < lo || float64(maxBits) > hi {
		t.Fatalf("max label = %d bits for n=%d, outside [%.0f, %.0f]", maxBits, r.Size(), lo, hi)
	}
}

func TestRejectsRecursiveGrammar(t *testing.T) {
	g := spec.MustCompile(wfspecs.RunningExample())
	r := gen.MustGenerate(g, gen.Options{TargetSize: 50, Seed: 0})
	if _, err := skl.Build(r, skeleton.TCL); err == nil {
		t.Fatal("SKL must reject recursive workflows (limitation 2)")
	}
}

func TestRejectsIncompleteRun(t *testing.T) {
	g := nonRecursive(t)
	r := run.New(g)
	if _, err := skl.Build(r, skeleton.TCL); err == nil {
		t.Fatal("SKL must reject incomplete runs (limitation 1: static)")
	}
}

func TestLabelAccessors(t *testing.T) {
	g := nonRecursive(t)
	r := gen.MustGenerate(g, gen.Options{TargetSize: 60, Seed: 2})
	s, err := skl.Build(r, skeleton.TCL)
	if err != nil {
		t.Fatal(err)
	}
	if s.LabelCount() != r.Size() {
		t.Fatalf("LabelCount = %d, want %d", s.LabelCount(), r.Size())
	}
	if _, ok := s.Label(99999); ok {
		t.Fatal("label for unknown vertex")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLabel must panic for unknown vertex")
		}
	}()
	s.MustLabel(99999)
}

// TestSKLAgreesWithDRL differentially tests the two schemes: on the
// same runs, the static baseline and the dynamic scheme must give
// identical answers for every pair.
func TestSKLAgreesWithDRL(t *testing.T) {
	g := nonRecursive(t)
	for seed := int64(0); seed < 4; seed++ {
		r := gen.MustGenerate(g, gen.Options{TargetSize: 200, Seed: seed})
		s, err := skl.Build(r, skeleton.TCL)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.LabelRun(r, skeleton.TCL, core.RModeDesignated)
		if err != nil {
			t.Fatal(err)
		}
		live := r.Graph.LiveVertices()
		for _, v := range live {
			for _, w := range live {
				if s.Reach(v, w) != d.Reach(v, w) {
					t.Fatalf("seed %d: SKL and DRL disagree on (%d,%d)", seed, v, w)
				}
			}
		}
	}
}
