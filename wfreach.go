// Package wfreach is a dynamic reachability-labeling library for
// workflow executions, implementing Bao, Davidson and Milo, "Labeling
// Recursive Workflow Executions On-the-Fly" (SIGMOD 2011).
//
// Workflow specifications — small DAGs of atomic and composite modules
// with loops, forks and recursion, formalized as vertex-replacement
// graph grammars — are executed into runs that can be thousands of
// vertices large. wfreach assigns every process and data item a
// compact reachability label the moment it appears, so provenance
// queries ("was A used, directly or indirectly, to produce B?") can be
// answered from the labels alone, in constant time, even over partial
// executions. For linear recursive workflows (the common case in
// practice) labels are O(log n) bits; the library also ships the
// paper's lower-bound constructions, the Θ(n) general-DAG scheme, and
// the static SKL baseline for comparison.
//
// # Quick start
//
//	s := wfreach.NewSpec().
//		Loop("L").
//		Start("g0", wfreach.NewGraph([]string{"s0", "L", "t0"},
//			[2]string{"s0", "L"}, [2]string{"L", "t0"})).
//		Implement("L", "h1", wfreach.NewGraph([]string{"s1", "work", "t1"},
//			[2]string{"s1", "work"}, [2]string{"work", "t1"})).
//		MustBuild()
//	g := wfreach.MustCompile(s)
//	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 1000, Seed: 1})
//	d, _ := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
//	reachable := d.Reach(v, w) // constant-time, labels only
//
// The execution-based labeler (NewExecutionLabeler) consumes one
// vertex insertion at a time instead, labeling executions as they
// stream in, and produces identical labels.
package wfreach

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"wfreach/internal/api"
	"wfreach/internal/cluster"
	"wfreach/internal/core"
	"wfreach/internal/gen"
	"wfreach/internal/graph"
	"wfreach/internal/label"
	"wfreach/internal/obs"
	"wfreach/internal/replica"
	"wfreach/internal/run"
	"wfreach/internal/service"
	"wfreach/internal/skeleton"
	"wfreach/internal/skl"
	"wfreach/internal/spec"
	"wfreach/internal/store"
	"wfreach/internal/tcldyn"
	"wfreach/internal/wfspecs"
	"wfreach/internal/wfxml"
)

// Graph building and specifications.
type (
	// Graph is a directed acyclic graph with named vertices.
	Graph = graph.Graph
	// VertexID identifies a vertex of a Graph or a run.
	VertexID = graph.VertexID
	// Spec is a validated workflow specification (Definition 5).
	Spec = spec.Spec
	// SpecBuilder assembles a specification.
	SpecBuilder = spec.Builder
	// Grammar is a compiled specification: the workflow grammar of
	// Definition 6 plus its recursion analysis.
	Grammar = spec.Grammar
	// GraphID identifies a specification graph (0 is the start graph).
	GraphID = spec.GraphID
	// VertexRef names one vertex of one specification graph.
	VertexRef = spec.VertexRef
	// Class is the recursion class of a grammar.
	Class = spec.Class
	// ModuleKind classifies module names (atomic, plain, loop, fork).
	ModuleKind = spec.Kind
)

// Runs and executions.
type (
	// Run is a (possibly still deriving) workflow run.
	Run = run.Run
	// Step is one applied derivation step (vertex replacement).
	Step = run.Step
	// Event is one execution insertion (vertex, predecessors,
	// specification mapping).
	Event = run.Event
	// GenOptions steers random run generation.
	GenOptions = gen.Options
)

// Labeling.
type (
	// Label is a DRL reachability label.
	Label = label.Label
	// LabelCodec encodes labels into the canonical bit layout.
	LabelCodec = label.Codec
	// DerivationLabeler labels derivations (Section 5.2).
	DerivationLabeler = core.DerivationLabeler
	// ExecutionLabeler labels executions (Section 5.3).
	ExecutionLabeler = core.ExecutionLabeler
	// NamedEvent is an execution event identified by module name only
	// (the Section 5.3 naming-restriction setting).
	NamedEvent = core.NamedEvent
	// SkeletonKind selects the specification-labeling scheme.
	SkeletonKind = skeleton.Kind
	// RMode selects the recursion-compression mode (Section 6).
	RMode = core.RMode
	// SKL is the static baseline scheme of Section 7.4.
	SKL = skl.Scheme
	// SKLLabel is an SKL label (three indexes plus skeleton pointer).
	SKLLabel = skl.Label
	// TCLDynamic is the Θ(n) dynamic scheme for arbitrary DAGs
	// (Section 3.2).
	TCLDynamic = tcldyn.Labeler
)

// Skeleton scheme kinds (Section 7.1).
const (
	// TCL precomputes the specification's transitive closure; O(1)
	// skeleton queries at n(n-1)/2 bits per specification graph.
	TCL = skeleton.TCL
	// BFS stores nothing and searches the specification per query.
	BFS = skeleton.BFS
)

// Recursion-compression modes (Section 6).
const (
	// RModeDesignated compresses one recursive vertex per production
	// into R-node chains (the full scheme; compact on linear grammars).
	RModeDesignated = core.RModeDesignated
	// RModeNone disables R nodes (the simplified adaptation).
	RModeNone = core.RModeNone
)

// Grammar classes.
const (
	ClassNonRecursive      = spec.ClassNonRecursive
	ClassLinear            = spec.ClassLinear
	ClassNonlinearSeries   = spec.ClassNonlinearSeries
	ClassNonlinearParallel = spec.ClassNonlinearParallel
)

// Module kinds.
const (
	ModuleAtomic = spec.Atomic
	ModulePlain  = spec.Plain
	ModuleLoop   = spec.Loop
	ModuleFork   = spec.Fork
)

// Label persistence and the concurrent provenance service.
type (
	// Store is a write-once map from run vertices to encoded labels,
	// answering reachability from the stored bytes alone. It is sharded
	// and internally synchronized: queries run lock-free against
	// atomically published immutable views.
	Store = store.Store
	// StoreShardStat is one store shard's published vertex count and
	// view publish epoch (see SessionStats.Shards).
	StoreShardStat = store.ShardStat
	// Registry is a concurrent registry of named labeling sessions.
	Registry = service.Registry
	// Session is one live labeling session: single-writer event ingest,
	// concurrent label-based queries.
	Session = service.Session
	// SessionConfig selects a session's labeling scheme.
	SessionConfig = service.Config
	// SessionStats is a point-in-time snapshot of a session.
	SessionStats = service.Stats
	// WireEvent is the JSON form of one execution event on the service
	// HTTP API.
	WireEvent = service.WireEvent
	// DurableOptions configures the persistence layer of a durable
	// registry: the data directory, the snapshot cadence and the fsync
	// policy.
	DurableOptions = service.DurableOptions
)

// NewStore creates an empty label store for runs of the grammar, with
// the default shard count.
func NewStore(g *Grammar, kind SkeletonKind) *Store { return store.New(g, kind) }

// NewShardedStore is NewStore with an explicit shard count (rounded up
// to a power of two; zero selects the default).
func NewShardedStore(g *Grammar, kind SkeletonKind, shards int) *Store {
	return store.NewSharded(g, kind, shards)
}

// NewRegistry returns an empty, memory-only session registry.
func NewRegistry() *Registry { return service.NewRegistry() }

// NewDurableRegistry returns a registry whose sessions persist to a
// data directory through a write-ahead log and periodic label
// snapshots, and can be rebuilt after a restart with Registry.Restore.
// See ARCHITECTURE.md for the on-disk format.
func NewDurableRegistry(opts DurableOptions) (*Registry, error) {
	return service.NewDurableRegistry(opts)
}

// ErrDurability marks server-side persistence failures on a durable
// session — a write-ahead log that cannot be written or flushed. A
// session returning it refuses further ingest; queries keep working.
var ErrDurability = service.ErrDurability

// NewServiceHandler returns the JSON/HTTP handler serving the registry
// (the cmd/wfserve API; see internal/service for the endpoints).
func NewServiceHandler(r *Registry) http.Handler { return service.NewHandler(r) }

// Observability (see internal/obs): the dependency-free metrics
// registry behind GET /v1/metrics, and logfmt structured request
// logging for the HTTP surface.
type (
	// MetricsRegistry is a node's metric family set; Registry.Obs()
	// returns the one the service plane registers into.
	MetricsRegistry = obs.Registry
	// ObsLogger writes logfmt lines (ts, level, msg, key=value...).
	ObsLogger = obs.Logger
	// AccessLogOptions tunes the request-logging middleware.
	AccessLogOptions = obs.AccessLogOptions
)

// NewObsLogger returns a logfmt logger writing to w (nil discards).
func NewObsLogger(w io.Writer) *ObsLogger { return obs.NewLogger(w) }

// AccessLog wraps an HTTP handler with structured request logging —
// one logfmt line per request (id, method, route, status, bytes,
// duration), a warn line for requests slower than opts.Slow, and
// request counters/latency in opts.Metrics when set.
func AccessLog(next http.Handler, l *ObsLogger, opts AccessLogOptions) http.Handler {
	return obs.AccessLog(next, l, opts)
}

// Replication: a follower tails a primary wfserve's write-ahead logs
// and serves the same query surface read-only (see internal/replica).
type (
	// Follower replicates a primary server into a local registry and
	// can be promoted to writable on failover.
	Follower = replica.Follower
	// FollowerOptions tunes a follower's polling, reconnect backoff
	// and apply batching.
	FollowerOptions = replica.Options
	// ReplicationStatus is a server's replication role and per-session
	// WAL progress (GET /v1/replication/status).
	ReplicationStatus = api.ReplicationStatus
	// SessionReplication is one session's replication progress.
	SessionReplication = api.SessionReplication
)

// NewFollower marks the registry a read-only follower of the primary
// at the given base URL and prepares to replicate it. Call Start on
// the result to begin tailing, Promote to flip to writable on
// failover, Close to stop without promoting. The registry should
// usually be durable and freshly restored, so replication resumes
// from the last applied event across restarts.
func NewFollower(primary string, reg *Registry, opts FollowerOptions) *Follower {
	return replica.New(primary, reg, opts)
}

// Clustering: shard sessions across several primary servers by
// consistent hashing on the session name (see internal/cluster and
// the "Cluster" section of ARCHITECTURE.md).
type (
	// ClusterMap is the versioned placement map every node and client
	// of one cluster shares: the static node set plus per-session
	// move overrides.
	ClusterMap = api.ClusterMap
	// ClusterNode is one node entry of a cluster map.
	ClusterNode = api.ClusterNode
	// ClusterController runs one node's share of a cluster: placement
	// gating, the /v1/cluster control plane, peer probing and session
	// moves.
	ClusterController = cluster.Controller
	// ClusterOptions tunes a controller's probing and move batching.
	ClusterOptions = cluster.Options
)

// LoadClusterMap reads a cluster map from its JSON config file (the
// wfserve -cluster flag).
func LoadClusterMap(path string) (ClusterMap, error) { return cluster.LoadMap(path) }

// NewClusterController builds the cluster controller for the node
// named self and installs its placement gate on the registry. Call
// Start on the result to begin probing peers, Close to stop.
func NewClusterController(self string, m ClusterMap, reg *Registry, opts ClusterOptions) (*ClusterController, error) {
	return cluster.New(self, m, reg, opts)
}

// GenerateEvents derives a random run and returns its execution event
// stream together with the run as ground-truth oracle.
func GenerateEvents(g *Grammar, opts GenOptions) ([]Event, *Run, error) {
	return gen.GenerateEvents(g, opts)
}

// LLM-agent adversarial workload (the load matrix's "agent"
// dimension): recursive tool-call conversations with explicit turn,
// delegation-depth, burst and retry control.
type (
	// AgentOptions steers GenerateAgentTrace.
	AgentOptions = gen.AgentOptions
	// AgentTrace is one generated agent conversation: events, oracle
	// run, and the shape the random choices produced.
	AgentTrace = gen.AgentTrace
)

// GenerateAgentTrace derives a random run of the LLM-agent grammar
// (the "Agent" builtin) and returns its execution event stream with
// ground truth and shape statistics.
func GenerateAgentTrace(opts AgentOptions) (*AgentTrace, error) {
	return gen.GenerateAgentTrace(opts)
}

// AgentWorkflow returns the LLM-agent workflow grammar (the "Agent"
// builtin): a conversation loop of recursive tool-call turns.
func AgentWorkflow() *Spec { return wfspecs.Agent() }

// ToWire converts an execution event to its HTTP wire form.
func ToWire(ev Event) WireEvent { return service.ToWire(ev) }

// ToWireNamed converts a name-identified event to its HTTP wire form.
func ToWireNamed(ev NamedEvent) WireEvent { return service.ToWireNamed(ev) }

// NewSpec returns an empty specification builder.
func NewSpec() *SpecBuilder { return spec.NewBuilder() }

// NewGraph builds a graph from vertex names (distinct) and name-pair
// edges; it panics on malformed literals.
func NewGraph(vertices []string, edges ...[2]string) *Graph { return spec.G(vertices, edges...) }

// NewGraphIdx builds a graph from vertex names (repeats allowed) and
// index-pair edges.
func NewGraphIdx(vertices []string, edges ...[2]int) *Graph { return spec.GIdx(vertices, edges...) }

// Compile analyzes a specification into a grammar.
func Compile(s *Spec) (*Grammar, error) { return spec.Compile(s) }

// MustCompile is Compile panicking on error.
func MustCompile(s *Spec) *Grammar { return spec.MustCompile(s) }

// NewRun starts a run of the grammar at its start graph.
func NewRun(g *Grammar) *Run { return run.New(g) }

// Generate derives a random run of roughly opts.TargetSize vertices.
func Generate(g *Grammar, opts GenOptions) (*Run, error) { return gen.Generate(g, opts) }

// MustGenerate is Generate panicking on error.
func MustGenerate(g *Grammar, opts GenOptions) *Run { return gen.MustGenerate(g, opts) }

// NewDerivationLabeler builds a derivation-based dynamic labeler.
func NewDerivationLabeler(g *Grammar, kind SkeletonKind, mode RMode) *DerivationLabeler {
	return core.NewDerivationLabeler(g, kind, mode)
}

// NewExecutionLabeler builds an execution-based dynamic labeler.
func NewExecutionLabeler(g *Grammar, kind SkeletonKind, mode RMode) *ExecutionLabeler {
	return core.NewExecutionLabeler(g, kind, mode)
}

// LabelRun labels a completed run's derivation end to end.
func LabelRun(r *Run, kind SkeletonKind, mode RMode) (*DerivationLabeler, error) {
	return core.LabelRun(r, kind, mode)
}

// LabelExecution labels a full execution event sequence end to end.
func LabelExecution(g *Grammar, events []Event, kind SkeletonKind, mode RMode) (*ExecutionLabeler, error) {
	return core.LabelExecution(g, events, kind, mode)
}

// LabelNamedExecution labels a full execution identified by module
// names only; the specification must satisfy the Section 5.3 naming
// restrictions (Spec.NameResolvable).
func LabelNamedExecution(g *Grammar, events []NamedEvent, kind SkeletonKind, mode RMode) (*ExecutionLabeler, error) {
	return core.LabelNamedExecution(g, events, kind, mode)
}

// BuildSKL builds the static SKL baseline over a completed run of a
// non-recursive grammar.
func BuildSKL(r *Run, kind SkeletonKind) (*SKL, error) { return skl.Build(r, kind) }

// NewTCLDynamic returns the Θ(n) dynamic labeler for arbitrary DAG
// executions.
func NewTCLDynamic() *TCLDynamic { return tcldyn.New() }

// NewLabelCodec builds the canonical label codec for a grammar.
func NewLabelCodec(g *Grammar) *LabelCodec { return label.NewCodec(g) }

// Built-in specifications (Sections 2.2, 3.1, 6 and 7).

// RunningExample returns the paper's running example (Figure 2).
func RunningExample() *Spec { return wfspecs.RunningExample() }

// BioAID returns the reconstruction of the real-life BioAID workflow
// (Section 7.2).
func BioAID() *Spec { return wfspecs.BioAID() }

// BioAIDNonRecursive returns BioAID with its recursion converted to a
// loop (the Section 7.4 comparison workload).
func BioAIDNonRecursive() *Spec { return wfspecs.BioAIDNonRecursive() }

// LowerBoundGrammar returns the Figure 6 grammar requiring Ω(n)-bit
// dynamic labels (Theorem 1).
func LowerBoundGrammar() *Spec { return wfspecs.Fig6() }

// PathGrammar returns the Figure 12 grammar (nonlinear yet compactly
// labelable, Example 15).
func PathGrammar() *Spec { return wfspecs.Fig12() }

// BuiltinSpec returns a built-in specification by name ("BioAID",
// "BioAIDNonRecursive", "LowerBound", "Path", "RunningExample") — the
// same names the service HTTP API accepts in a create request.
func BuiltinSpec(name string) (*Spec, bool) { return service.Builtin(name) }

// BuiltinSpecNames lists the built-in specification names, sorted.
func BuiltinSpecNames() []string { return service.BuiltinNames() }

// SyntheticParams configures the Figure 13 synthetic family.
type SyntheticParams = wfspecs.SyntheticParams

// Synthetic builds a member of the Figure 13 synthetic family.
func Synthetic(p SyntheticParams) *Spec { return wfspecs.Synthetic(p) }

// XML persistence (Section 7.1 stores all data as XML).

// SpecXML renders a specification as its XML document — the form the
// service create request carries inline in its spec_xml field.
func SpecXML(s *Spec) (string, error) {
	var b strings.Builder
	if err := wfxml.EncodeSpec(&b, s); err != nil {
		return "", err
	}
	return b.String(), nil
}

// SaveSpec writes a specification to an XML file.
func SaveSpec(path string, s *Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wfreach: %w", err)
	}
	defer f.Close()
	if err := wfxml.EncodeSpec(f, s); err != nil {
		return err
	}
	return f.Close()
}

// LoadSpec reads a specification from an XML file.
func LoadSpec(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wfreach: %w", err)
	}
	defer f.Close()
	return wfxml.DecodeSpec(f)
}

// SaveRun writes a run (graph, mapping and derivation) to an XML file.
func SaveRun(path string, r *Run) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wfreach: %w", err)
	}
	defer f.Close()
	if err := wfxml.EncodeRun(f, r); err != nil {
		return err
	}
	return f.Close()
}

// LoadRun reads a run from an XML file, replaying and verifying its
// derivation against the grammar.
func LoadRun(path string, g *Grammar) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wfreach: %w", err)
	}
	defer f.Close()
	return wfxml.DecodeRun(f, g)
}
