// Quickstart: build the paper's running example workflow (Figure 2),
// derive a run, label it on the fly, and answer reachability queries
// from the labels alone.
package main

import (
	"fmt"
	"log"

	"wfreach"
)

func main() {
	// The running example: a loop L around a fork F around a module A
	// that recurses through C (Figure 2 of the paper).
	s := wfreach.RunningExample()
	g, err := wfreach.Compile(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("specification:", s)
	fmt.Println("recursion class:", g.Class())
	fmt.Println("productions:")
	for _, p := range g.Productions() {
		fmt.Println("  ", p)
	}

	// Derive a run of about 200 module executions and label every
	// vertex the moment it is created.
	r := wfreach.NewRun(g)
	d := wfreach.NewDerivationLabeler(g, wfreach.TCL, wfreach.RModeDesignated)
	if err := d.Start(r.StartIDs); err != nil {
		log.Fatal(err)
	}
	for !r.Complete() {
		u := r.Open()[0]
		name := r.NameOf(u)
		impls := g.Spec().Implementations(name)
		copies := 1
		if k := g.Spec().Kind(name); (k == wfreach.ModuleLoop || k == wfreach.ModuleFork) && r.Size() < 150 {
			copies = 3 // repeat loops and forks a few times
		}
		impl := impls[0]
		if r.Size() > 150 && len(impls) > 1 {
			impl = impls[len(impls)-1] // steer toward the cheap alternative
		}
		st, err := r.Apply(u, impl, copies)
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Apply(st); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nderived a run with %d vertices in %d steps\n", r.Size(), len(r.Steps))

	// Provenance queries, answered from two labels in constant time.
	src := r.Graph.Sources()[0]
	snk := r.Graph.Sinks()[0]
	fmt.Printf("source %s(%d) ; sink %s(%d): %v\n",
		r.NameOf(src), src, r.NameOf(snk), snk, d.Reach(src, snk))
	fmt.Printf("sink ; source: %v\n", d.Reach(snk, src))

	// Label sizes stay logarithmic.
	codec := wfreach.NewLabelCodec(g)
	maxBits := 0
	for _, v := range r.Graph.LiveVertices() {
		if b := codec.BitLen(d.MustLabel(v)); b > maxBits {
			maxBits = b
		}
	}
	fmt.Printf("longest label: %d bits for a %d-vertex run\n", maxBits, r.Size())
}
