// Nonlinear recursion: the boundary of compact dynamic labeling.
// The Figure 6 grammar is parallel recursive, and Theorem 1 proves any
// dynamic scheme needs Ω(n)-bit labels on it; the Section 6 adaptation
// of DRL still labels it correctly, with labels that grow linearly.
// The Figure 12 path grammar is nonlinear too, yet its runs are simple
// paths and labels stay small — the open-boundary example (Example 15).
package main

import (
	"fmt"
	"log"

	"wfreach"
)

func maxLabelBits(g *wfreach.Grammar, size int, seed int64, deep bool) (int, int) {
	r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: size, Seed: seed, DepthFirst: deep})
	if err != nil {
		log.Fatal(err)
	}
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		log.Fatal(err)
	}
	codec := wfreach.NewLabelCodec(g)
	maxBits := 0
	for _, v := range r.Graph.LiveVertices() {
		if b := codec.BitLen(d.MustLabel(v)); b > maxBits {
			maxBits = b
		}
	}
	return maxBits, r.Size()
}

func main() {
	lower := wfreach.MustCompile(wfreach.LowerBoundGrammar())
	path := wfreach.MustCompile(wfreach.PathGrammar())
	linear := wfreach.MustCompile(wfreach.BioAID())
	fmt.Printf("Figure 6 grammar:  %s (Theorem 1: Ω(n) labels unavoidable)\n", lower.Class())
	fmt.Printf("Figure 12 grammar: %s (Example 15: runs are simple paths)\n", path.Class())
	fmt.Printf("BioAID:            %s (Theorem 3: O(log n) labels)\n\n", linear.Class())

	fmt.Println("max label bits as runs grow (DRL, adapted per Section 6;")
	fmt.Println("fig6/fig12 runs use depth-first derivations, the adversarial shape):")
	fmt.Printf("%10s %14s %14s %14s\n", "run size", "fig6 (Θ(n))", "fig12 (path)", "BioAID (log)")
	for _, size := range []int{256, 512, 1024, 2048, 4096} {
		b6, n6 := maxLabelBits(lower, size, int64(size), true)
		b12, _ := maxLabelBits(path, size, int64(size), true)
		bl, _ := maxLabelBits(linear, size, int64(size), false)
		fmt.Printf("%10d %14d %14d %14d\n", n6, b6, b12, bl)
	}
	fmt.Println("\nfig6 grows linearly with run size — the lower bound is real;")
	fmt.Println("BioAID stays logarithmic.")
}
