// Named log replay: labeling an execution when the workflow engine
// logs only module names (no specification-vertex ids). Section 5.3
// shows this works whenever the specification satisfies two natural
// naming restrictions — distinct names within each sub-workflow,
// globally unique source/sink dummies — which any specification can be
// rewritten to meet. The specification travels as XML, as in the
// paper's evaluation setup.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"wfreach"
)

func main() {
	// Persist and reload the specification, as a workflow system would.
	dir, err := os.MkdirTemp("", "wfreach-namedlog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	specPath := filepath.Join(dir, "bioaid.xml")
	if err := wfreach.SaveSpec(specPath, wfreach.BioAID()); err != nil {
		log.Fatal(err)
	}
	s, err := wfreach.LoadSpec(specPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.NameResolvable(); err != nil {
		log.Fatalf("spec not name-resolvable: %v", err)
	}
	fmt.Println("specification round-tripped through", specPath)

	g, err := wfreach.Compile(s)
	if err != nil {
		log.Fatal(err)
	}

	// Simulate an engine that reports "<module name> finished, reading
	// from <vertices>" lines: strip the spec-vertex ids from a real
	// execution to build the name-only log.
	r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: 2000, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	events, err := r.Execution(nil)
	if err != nil {
		log.Fatal(err)
	}
	logLines := make([]wfreach.NamedEvent, len(events))
	for i, ev := range events {
		logLines[i] = wfreach.NamedEvent{V: ev.V, Name: r.NameOf(ev.V), Preds: ev.Preds}
	}
	fmt.Printf("engine log: %d lines, names only (e.g. %q, %q, %q)\n",
		len(logLines), logLines[0].Name, logLines[1].Name, logLines[2].Name)

	// Replay the log through the name-resolving labeler.
	e, err := wfreach.LabelNamedExecution(g, logLines, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		log.Fatal(err)
	}

	// Same labels as the fully-informed derivation-based scheme.
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		log.Fatal(err)
	}
	same := 0
	for _, v := range r.Graph.LiveVertices() {
		if el, ok := e.Label(v); ok && el.Equal(d.MustLabel(v)) {
			same++
		}
	}
	fmt.Printf("labels identical to the derivation-based scheme: %d / %d\n", same, r.Size())

	src, snk := r.Graph.Sources()[0], r.Graph.Sinks()[0]
	fmt.Printf("provenance from names alone: input reaches output: %v\n", e.Reach(src, snk))
}
