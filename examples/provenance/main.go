// Provenance: the scenario that motivates the paper. A scientific
// workflow (the BioAID reconstruction, Section 7.2) runs for a long
// time; as modules execute and data is produced, every vertex of the
// execution graph gets a reachability label, and provenance queries —
// "was data item X used, directly or indirectly, to produce data item
// Y?" — are answered from two labels in constant time, without
// touching the (large) execution graph.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wfreach"
)

func main() {
	s := wfreach.BioAID()
	g, err := wfreach.Compile(s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BioAID reconstruction: %d sub-workflows, %d spec vertices, class %s\n",
		len(s.Graphs()), g.TotalVertices(), g.Class())

	// A realistic run: loops and forks repeated many times, the A↔C
	// recursion unrolled to random depths.
	r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: 8192, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run: %d module executions, %d data dependencies\n",
		r.Size(), r.Graph.NumEdges())

	// Label economics: the whole point of the scheme.
	codec := wfreach.NewLabelCodec(g)
	maxBits, totalBits := 0, 0
	live := r.Graph.LiveVertices()
	for _, v := range live {
		b := codec.BitLen(d.MustLabel(v))
		totalBits += b
		if b > maxBits {
			maxBits = b
		}
	}
	fmt.Printf("labels: max %d bits, avg %.1f bits; total %.1f KB for the whole run\n",
		maxBits, float64(totalBits)/float64(len(live)), float64(totalBits)/8/1024)
	fmt.Printf("(a transitive-closure index would need %.1f KB)\n",
		float64(r.Size()*(r.Size()-1)/2)/8/1024)

	// Provenance queries.
	rng := rand.New(rand.NewSource(7))
	fmt.Println("\nsample provenance queries (answered from labels only):")
	for i := 0; i < 8; i++ {
		v := live[rng.Intn(len(live))]
		w := live[rng.Intn(len(live))]
		fmt.Printf("  did %s(%d) contribute to %s(%d)?  %v\n",
			r.NameOf(v), v, r.NameOf(w), w, d.Reach(v, w))
	}

	// Lineage of the final result: which fraction of executions fed it?
	snk := r.Graph.Sinks()[0]
	contributed := 0
	for _, v := range live {
		if d.Reach(v, snk) {
			contributed++
		}
	}
	fmt.Printf("\n%d of %d executions (%.1f%%) are in the final result's lineage\n",
		contributed, len(live), 100*float64(contributed)/float64(len(live)))
}
