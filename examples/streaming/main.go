// Streaming: on-the-fly labeling of a live execution (the paper's
// execution-based model, Section 5.3). Vertices arrive one by one, as
// a workflow engine would report them; each is labeled immediately —
// labels are never revised — and reachability queries are answered
// over the partial execution long before the workflow finishes.
package main

import (
	"fmt"
	"log"

	"wfreach"
)

func main() {
	g, err := wfreach.Compile(wfreach.Synthetic(wfreach.SyntheticParams{
		SubSize: 12, Depth: 5, RecModules: 1, Seed: 3,
	}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthetic linear-recursive workflow (Figure 13 family)")

	// Simulate the engine: a finished run supplies the event stream in
	// execution (topological) order; the labeler sees only one event at
	// a time, exactly as if the workflow were still running.
	r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: 3000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	events, err := r.Execution(nil)
	if err != nil {
		log.Fatal(err)
	}

	e := wfreach.NewExecutionLabeler(g, wfreach.TCL, wfreach.RModeDesignated)
	var first wfreach.VertexID
	checkpoints := map[int]bool{
		len(events) / 10: true, len(events) / 2: true, len(events) - 1: true,
	}
	for i, ev := range events {
		if _, err := e.Insert(ev); err != nil {
			log.Fatalf("event %d: %v", i, err)
		}
		if i == 0 {
			first = ev.V
		}
		if checkpoints[i] {
			// Query the partial execution: no waiting for completion.
			fmt.Printf("after %5d of %d events: workflow input reaches newest vertex %s(%d): %v\n",
				i+1, len(events), r.NameOf(ev.V), ev.V, e.Reach(first, ev.V))
		}
	}

	// The streamed labels are identical to what the derivation-based
	// labeler would have produced offline.
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		log.Fatal(err)
	}
	same := 0
	for _, v := range r.Graph.LiveVertices() {
		el, _ := e.Label(v)
		if el.Equal(d.MustLabel(v)) {
			same++
		}
	}
	fmt.Printf("labels identical to the derivation-based scheme: %d / %d\n",
		same, r.Size())
}
