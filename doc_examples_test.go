package wfreach_test

import (
	"fmt"

	"wfreach"
)

// ExampleBuildSKL compares the static baseline against the dynamic
// scheme on the same completed run: both must answer identically; only
// DRL could have answered before the run finished.
func ExampleBuildSKL() {
	g := wfreach.MustCompile(wfreach.BioAIDNonRecursive())
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 300, Seed: 1})
	s, err := wfreach.BuildSKL(r, wfreach.TCL)
	if err != nil {
		panic(err)
	}
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		panic(err)
	}
	src, snk := r.Graph.Sources()[0], r.Graph.Sinks()[0]
	fmt.Println("SKL:", s.Reach(src, snk), "DRL:", d.Reach(src, snk))
	fmt.Println("global spec vertices:", s.GlobalSize())
	// Output:
	// SKL: true DRL: true
	// global spec vertices: 106
}

// ExampleNewTCLDynamic labels an arbitrary DAG execution with the
// Section 3.2 scheme: simple, general, and n-1 bits per label.
func ExampleNewTCLDynamic() {
	l := wfreach.NewTCLDynamic()
	// A diamond: 0 → {1, 2} → 3.
	l.Insert(0, nil)
	l.Insert(1, []wfreach.VertexID{0})
	l.Insert(2, []wfreach.VertexID{0})
	l.Insert(3, []wfreach.VertexID{1, 2})
	r03, _ := l.Reach(0, 3)
	r12, _ := l.Reach(1, 2)
	fmt.Println(r03, r12, l.MaxBits())
	// Output:
	// true false 3
}

// ExampleGrammar_Productions renders the workflow grammar of the
// running example (compare the paper's Figure 4).
func ExampleGrammar_Productions() {
	g := wfreach.MustCompile(wfreach.RunningExample())
	for _, p := range g.Productions() {
		fmt.Println(p)
	}
	// Output:
	// A := h3 | h4
	// B := h5
	// C := h6
	// F := h2 | P(h,h) | …
	// L := h1 | S(h,h) | …
}

// ExampleNewLabelCodec shows the storage path: encode a label to
// bytes, measure it, and decode it back.
func ExampleNewLabelCodec() {
	g := wfreach.MustCompile(wfreach.RunningExample())
	r := wfreach.MustGenerate(g, wfreach.GenOptions{TargetSize: 50, Seed: 2})
	d, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		panic(err)
	}
	codec := wfreach.NewLabelCodec(g)
	l := d.MustLabel(r.Graph.Sources()[0])
	enc := codec.Encode(l)
	dec, err := codec.Decode(enc)
	if err != nil {
		panic(err)
	}
	fmt.Println("round trip:", dec.Equal(l))
	fmt.Println("accounting bits:", codec.BitLen(l))
	// Output:
	// round trip: true
	// accounting bits: 8
}
