// Benchmarks regenerating the paper's evaluation (Section 7), one per
// table and figure. Time-based figures report ns/op directly; label
// length figures attach bits as custom metrics (max_bits, avg_bits).
// The full paper-style sweeps with all data points are produced by
// cmd/wfbench (see EXPERIMENTS.md).
package wfreach_test

import (
	"math/rand"
	"sync"
	"testing"

	"wfreach"
)

const benchRunSize = 8192

func benchRun(b *testing.B, s *wfreach.Spec, size int, seed int64) (*wfreach.Grammar, *wfreach.Run) {
	b.Helper()
	g, err := wfreach.Compile(s)
	if err != nil {
		b.Fatal(err)
	}
	r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: size, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return g, r
}

func reportLabelBits(b *testing.B, g *wfreach.Grammar, d *wfreach.DerivationLabeler, r *wfreach.Run) {
	b.Helper()
	codec := wfreach.NewLabelCodec(g)
	maxBits, total, n := 0, 0, 0
	for _, v := range r.Graph.LiveVertices() {
		bits := codec.BitLen(d.MustLabel(v))
		if bits > maxBits {
			maxBits = bits
		}
		total += bits
		n++
	}
	b.ReportMetric(float64(maxBits), "max_bits")
	b.ReportMetric(float64(total)/float64(n), "avg_bits")
}

// BenchmarkFig01Compactness measures the maximum label length per
// graph class (Figure 1's landscape): Θ(log n) for static and dynamic
// linear-recursive runs, Θ(n) for dynamic recursive runs and DAGs.
func BenchmarkFig01Compactness(b *testing.B) {
	b.Run("linear-DRL", func(b *testing.B) {
		g, r := benchRun(b, wfreach.BioAID(), 4096, 1)
		var d *wfreach.DerivationLabeler
		for i := 0; i < b.N; i++ {
			var err error
			if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
		reportLabelBits(b, g, d, r)
	})
	b.Run("recursive-DRL", func(b *testing.B) {
		g, err := wfreach.Compile(wfreach.LowerBoundGrammar())
		if err != nil {
			b.Fatal(err)
		}
		r, err := wfreach.Generate(g, wfreach.GenOptions{TargetSize: 4096, Seed: 1, DepthFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		var d *wfreach.DerivationLabeler
		for i := 0; i < b.N; i++ {
			if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
		reportLabelBits(b, g, d, r)
	})
	b.Run("dag-TCL", func(b *testing.B) {
		g, r := benchRun(b, wfreach.BioAID(), 4096, 1)
		_ = g
		evs, err := r.Execution(nil)
		if err != nil {
			b.Fatal(err)
		}
		var maxBits int
		for i := 0; i < b.N; i++ {
			l := wfreach.NewTCLDynamic()
			for _, ev := range evs {
				if _, err := l.Insert(ev.V, ev.Preds); err != nil {
					b.Fatal(err)
				}
			}
			maxBits = l.MaxBits()
		}
		b.ReportMetric(float64(maxBits), "max_bits")
	})
}

// BenchmarkTable2SpecOverhead times labeling the specification itself
// and reports the skeleton sizes of Table 2.
func BenchmarkTable2SpecOverhead(b *testing.B) {
	b.Run("DRL-TCL", func(b *testing.B) {
		g, err := wfreach.Compile(wfreach.BioAID())
		if err != nil {
			b.Fatal(err)
		}
		bits := 0
		for i := 0; i < b.N; i++ {
			d := wfreach.NewDerivationLabeler(g, wfreach.TCL, wfreach.RModeDesignated)
			bits = d.Skeleton().Bits()
		}
		b.ReportMetric(float64(bits), "skeleton_bits")
	})
	b.Run("SKL-TCL", func(b *testing.B) {
		// SKL's preprocessing as seen through the public API: the full
		// static build over a minimal run, which includes inlining the
		// global specification and labeling its 106 vertices (the
		// 5565-bit skeleton of Table 2). The harness's `wfbench -only
		// table2` isolates the skeleton-only cost.
		g, r := benchRun(b, wfreach.BioAIDNonRecursive(), 1024, 1)
		_ = g
		var bits int
		for i := 0; i < b.N; i++ {
			s, err := wfreach.BuildSKL(r, wfreach.TCL)
			if err != nil {
				b.Fatal(err)
			}
			bits = s.SkeletonBits()
		}
		b.ReportMetric(float64(bits), "skeleton_bits")
	})
}

// BenchmarkFig14LabelLength labels a BioAID run and reports the
// logarithmic label sizes of Figure 14.
func BenchmarkFig14LabelLength(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAID(), benchRunSize, 14)
	var d *wfreach.DerivationLabeler
	var err error
	for i := 0; i < b.N; i++ {
		if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
			b.Fatal(err)
		}
	}
	reportLabelBits(b, g, d, r)
}

// BenchmarkFig15Construction compares total construction time of the
// derivation-based and execution-based labelers (Figure 15).
func BenchmarkFig15Construction(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAID(), benchRunSize, 15)
	evs, err := r.Execution(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("derivation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(r.Size()), "ns/vertex")
	})
	b.Run("execution", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wfreach.LabelExecution(g, evs, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(r.Size()), "ns/vertex")
	})
}

func queryBench(b *testing.B, r *wfreach.Run, reach func(v, w wfreach.VertexID) bool) {
	b.Helper()
	live := r.Graph.LiveVertices()
	rng := rand.New(rand.NewSource(16))
	pairs := make([][2]wfreach.VertexID, 4096)
	for i := range pairs {
		pairs[i] = [2]wfreach.VertexID{live[rng.Intn(len(live))], live[rng.Intn(len(live))]}
	}
	b.ResetTimer()
	sink := false
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		sink = sink != reach(p[0], p[1])
	}
	_ = sink
}

// BenchmarkFig16QueryTime measures constant-time queries for DRL under
// both skeleton schemes (Figure 16).
func BenchmarkFig16QueryTime(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAID(), benchRunSize, 16)
	_ = g
	for _, kind := range []wfreach.SkeletonKind{wfreach.TCL, wfreach.BFS} {
		d, err := wfreach.LabelRun(r, kind, wfreach.RModeDesignated)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("DRL-"+kind.String(), func(b *testing.B) { queryBench(b, r, d.Reach) })
	}
}

// BenchmarkFig17VaryingSize sweeps the sub-workflow size (Figure 17).
func BenchmarkFig17VaryingSize(b *testing.B) {
	for _, sub := range []int{10, 40, 160} {
		b.Run(sizeTag("sub", sub), func(b *testing.B) {
			s := wfreach.Synthetic(wfreach.SyntheticParams{SubSize: sub, Depth: 5, RecModules: 1, Seed: int64(sub)})
			g, r := benchRun(b, s, 5120, 17)
			var d *wfreach.DerivationLabeler
			var err error
			for i := 0; i < b.N; i++ {
				if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
					b.Fatal(err)
				}
			}
			reportLabelBits(b, g, d, r)
		})
	}
}

// BenchmarkFig18VaryingDepth sweeps the nesting depth (Figure 18).
func BenchmarkFig18VaryingDepth(b *testing.B) {
	for _, depth := range []int{5, 15, 25} {
		b.Run(sizeTag("depth", depth), func(b *testing.B) {
			s := wfreach.Synthetic(wfreach.SyntheticParams{SubSize: 20, Depth: depth, RecModules: 1, Seed: int64(depth)})
			g, r := benchRun(b, s, 5120, 18)
			var d *wfreach.DerivationLabeler
			var err error
			for i := 0; i < b.N; i++ {
				if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
					b.Fatal(err)
				}
			}
			reportLabelBits(b, g, d, r)
		})
	}
}

// BenchmarkFig19Nonlinear compares linear and nonlinear recursion
// (Figure 19).
func BenchmarkFig19Nonlinear(b *testing.B) {
	for _, rec := range []int{1, 2} {
		name := "linear"
		if rec == 2 {
			name = "nonlinear"
		}
		b.Run(name, func(b *testing.B) {
			s := wfreach.Synthetic(wfreach.SyntheticParams{SubSize: 20, Depth: 5, RecModules: rec, Seed: 40})
			g, r := benchRun(b, s, benchRunSize, 19)
			var d *wfreach.DerivationLabeler
			var err error
			for i := 0; i < b.N; i++ {
				if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
					b.Fatal(err)
				}
			}
			reportLabelBits(b, g, d, r)
		})
	}
}

// BenchmarkFig20DRLvsSKL compares maximum label lengths (Figure 20).
func BenchmarkFig20DRLvsSKL(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAIDNonRecursive(), benchRunSize, 20)
	b.Run("DRL", func(b *testing.B) {
		var d *wfreach.DerivationLabeler
		var err error
		for i := 0; i < b.N; i++ {
			if d, err = wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
		reportLabelBits(b, g, d, r)
	})
	b.Run("SKL", func(b *testing.B) {
		var s *wfreach.SKL
		var err error
		for i := 0; i < b.N; i++ {
			if s, err = wfreach.BuildSKL(r, wfreach.TCL); err != nil {
				b.Fatal(err)
			}
		}
		maxBits := 0
		for _, v := range r.Graph.LiveVertices() {
			if bits := s.BitLen(s.MustLabel(v)); bits > maxBits {
				maxBits = bits
			}
		}
		b.ReportMetric(float64(maxBits), "max_bits")
	})
}

// BenchmarkFig21Construction compares construction times of DRL (both
// variants) and SKL (Figure 21).
func BenchmarkFig21Construction(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAIDNonRecursive(), benchRunSize, 21)
	evs, err := r.Execution(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DRL-derivation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DRL-execution", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wfreach.LabelExecution(g, evs, wfreach.TCL, wfreach.RModeDesignated); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SKL-static", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wfreach.BuildSKL(r, wfreach.TCL); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig22QueryTime measures all four scheme/skeleton query
// combinations (Figure 22).
func BenchmarkFig22QueryTime(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAIDNonRecursive(), benchRunSize, 22)
	_ = g
	dTCL, err := wfreach.LabelRun(r, wfreach.TCL, wfreach.RModeDesignated)
	if err != nil {
		b.Fatal(err)
	}
	dBFS, err := wfreach.LabelRun(r, wfreach.BFS, wfreach.RModeDesignated)
	if err != nil {
		b.Fatal(err)
	}
	sTCL, err := wfreach.BuildSKL(r, wfreach.TCL)
	if err != nil {
		b.Fatal(err)
	}
	sBFS, err := wfreach.BuildSKL(r, wfreach.BFS)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("DRL-TCL", func(b *testing.B) { queryBench(b, r, dTCL.Reach) })
	b.Run("DRL-BFS", func(b *testing.B) { queryBench(b, r, dBFS.Reach) })
	b.Run("SKL-TCL", func(b *testing.B) { queryBench(b, r, sTCL.Reach) })
	b.Run("SKL-BFS", func(b *testing.B) { queryBench(b, r, sBFS.Reach) })
}

// BenchmarkServiceIngest measures streaming-event throughput through a
// provenance-service session (labeling + encoding + store publication)
// — the server hot path behind cmd/wfserve — with and without
// concurrent readers issuing reachability queries from the encoded
// labels. Detailed variants live in internal/service.
func BenchmarkServiceIngest(b *testing.B) {
	g, r := benchRun(b, wfreach.BioAID(), benchRunSize, 23)
	evs, err := r.Execution(nil)
	if err != nil {
		b.Fatal(err)
	}
	ingest := func(b *testing.B) *wfreach.Session {
		s, err := wfreach.NewRegistry().Create("bench", g, wfreach.SessionConfig{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < len(evs); i += 256 {
			end := min(i+256, len(evs))
			if _, err := s.Append(evs[i:end]); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	b.Run("ingest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ingest(b)
		}
		b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("ingest+readers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			s, err := wfreach.NewRegistry().Create("bench", g, wfreach.SessionConfig{})
			if err != nil {
				b.Fatal(err)
			}
			for ri := 0; ri < 4; ri++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						n := s.Vertices()
						if n < 2 {
							continue
						}
						_, _ = s.Reach(evs[rng.Int63n(n)].V, evs[rng.Int63n(n)].V)
					}
				}(int64(ri))
			}
			for j := 0; j < len(evs); j += 256 {
				end := min(j+256, len(evs))
				if _, err := s.Append(evs[j:end]); err != nil {
					b.Fatal(err)
				}
			}
			close(stop)
			wg.Wait()
		}
		b.ReportMetric(float64(len(evs)*b.N)/b.Elapsed().Seconds(), "events/sec")
	})
	b.Run("query", func(b *testing.B) {
		s := ingest(b)
		queryBench(b, r, func(v, w wfreach.VertexID) bool {
			ok, err := s.Reach(v, w)
			if err != nil {
				b.Fatal(err)
			}
			return ok
		})
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	})
}

func sizeTag(prefix string, n int) string {
	return prefix + "=" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
